//! `amopt` — batch-optimize program files in parallel.
//!
//! ```sh
//! # Optimize everything under programs/ (the default corpus):
//! cargo run --release -p am-pipeline --bin amopt
//!
//! # Specific files and directories, 4 workers, two passes over the batch
//! # (the second pass is served entirely from the cache):
//! cargo run --release -p am-pipeline --bin amopt -- --workers 4 --repeat 2 programs demo.wl
//!
//! # Print each optimized program:
//! cargo run --release -p am-pipeline --bin amopt -- --emit programs/matrix_sum.wl
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use am_lang::SourceKind;
use am_obs::provenance;
use am_pipeline::bench_json::{self, BenchRecord};
use am_pipeline::{
    explain_graph, Job, JobInput, JobOutcome, Pipeline, PipelineConfig, PipelineReport,
};
use am_trace::{export, Tracer};

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Jsonl,
    Summary,
}

struct Options {
    workers: Option<usize>,
    cache_capacity: usize,
    max_motion_rounds: Option<usize>,
    repeat: usize,
    emit: bool,
    quiet: bool,
    verify: bool,
    prove: bool,
    lint: bool,
    trace: Option<PathBuf>,
    trace_format: TraceFormat,
    explain: bool,
    explain_dir: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    synthetic: usize,
    inputs: Vec<PathBuf>,
}

const USAGE: &str = "usage: amopt [options] [file|dir ...]

Optimizes every .wl and .ir file given (directories are scanned,
non-recursively). With no inputs, uses ./programs.

options:
  --workers N      worker threads (default: available parallelism)
  --cache-cap N    in-memory result-cache capacity in entries (default
                   256; --cache-size is accepted as an alias)
  --rounds N       motion-round budget per job (default: paper's bound)
  --repeat N       run the batch N times; repeats hit the cache (default 1)
  --emit           print each optimized program (canonical text)
  --quiet          suppress the per-job report, print only the summary
  --verify         translation-validate every job per phase (am-check);
                   a failed validation fails the batch
  --prove          statically prove every phase pair equivalent for all
                   inputs with the am-prove symbolic prover (implies
                   --verify; inconclusive pairs fall back to the
                   interpreter; a refuted pair fails the batch); with
                   --explain, also statically discharges each recorded
                   elimination's side condition
  --lint           run the am-lint static suite on every optimized
                   program; error-severity findings fail the batch
  --trace FILE     record a structured trace of the whole run to FILE
                   (phases, motion rounds, analyses, jobs, batches)
  --trace-format F trace output format: chrome (chrome://tracing JSON,
                   default), jsonl (one event per line, amstat input),
                   or summary (human-readable tree)
  --explain        re-optimize each job with provenance recording (cache
                   bypassed) and print the decision log: one line per
                   eliminated/hoisted/flushed assignment naming the paper
                   rule and the analysis fact that justified it
  --explain-dir D  with --explain, also write per-job exports under D:
                   <name>.prov.jsonl (machine-readable decision log) and
                   <name>.prov.txt (the human report)
  --bench-json F   write per-job phase timings and solver counters of the
                   last pass to F (am-bench-dataflow/v1 JSON, the schema
                   bench_dataflow emits); cache hits report zero timings
  --synthetic N    append N deterministic synthetic programs to the batch
                   (seeded random structured programs; no files needed)
  --help           this text";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workers: None,
        cache_capacity: 256,
        max_motion_rounds: None,
        repeat: 1,
        emit: false,
        quiet: false,
        verify: false,
        prove: false,
        lint: false,
        trace: None,
        trace_format: TraceFormat::Chrome,
        explain: false,
        explain_dir: None,
        bench_json: None,
        synthetic: 0,
        inputs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                opts.workers = Some(
                    value(&mut args, "--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--cache-cap" | "--cache-size" => {
                opts.cache_capacity = value(&mut args, &arg)?
                    .parse()
                    .map_err(|e| format!("{arg}: {e}"))?;
            }
            "--rounds" => {
                opts.max_motion_rounds = Some(
                    value(&mut args, "--rounds")?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?,
                );
            }
            "--repeat" => {
                opts.repeat = value(&mut args, "--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
                if opts.repeat == 0 {
                    return Err("--repeat must be at least 1".to_owned());
                }
            }
            "--emit" => opts.emit = true,
            "--quiet" => opts.quiet = true,
            "--verify" => opts.verify = true,
            "--prove" => opts.prove = true,
            "--lint" => opts.lint = true,
            "--trace" => {
                opts.trace = Some(PathBuf::from(value(&mut args, "--trace")?));
            }
            "--trace-format" => {
                opts.trace_format = match value(&mut args, "--trace-format")?.as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "jsonl" => TraceFormat::Jsonl,
                    "summary" => TraceFormat::Summary,
                    other => {
                        return Err(format!(
                            "--trace-format: '{other}' is not chrome, jsonl or summary"
                        ))
                    }
                };
            }
            "--explain" => opts.explain = true,
            "--explain-dir" => {
                opts.explain = true;
                opts.explain_dir = Some(PathBuf::from(value(&mut args, "--explain-dir")?));
            }
            "--bench-json" => {
                opts.bench_json = Some(PathBuf::from(value(&mut args, "--bench-json")?));
            }
            "--synthetic" => {
                opts.synthetic = value(&mut args, "--synthetic")?
                    .parse()
                    .map_err(|e| format!("--synthetic: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'; --help for usage"));
            }
            path => opts.inputs.push(PathBuf::from(path)),
        }
    }
    if opts.inputs.is_empty() && opts.synthetic == 0 {
        opts.inputs.push(PathBuf::from("programs"));
    }
    Ok(opts)
}

/// Deterministic synthetic corpus: seeded random structured programs,
/// serialized to IR text so they flow through the normal job path.
fn synthetic_jobs(count: usize) -> Vec<Job> {
    use am_ir::random::{structured, SplitMix64, StructuredConfig};
    (0..count)
        .map(|i| {
            let mut rng = SplitMix64::new(0xA5_0000 + i as u64);
            let g = structured(&mut rng, &StructuredConfig::default());
            Job::from_source(
                format!("synthetic/{i:04}"),
                SourceKind::Ir,
                am_ir::text::to_text(&g),
            )
        })
        .collect()
}

/// Expands files and directories into jobs, sorted by name so the batch
/// is deterministic regardless of directory iteration order.
fn collect_jobs(inputs: &[PathBuf]) -> Result<Vec<Job>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let entries =
                std::fs::read_dir(input).map_err(|e| format!("{}: {e}", input.display()))?;
            for entry in entries {
                let path = entry
                    .map_err(|e| format!("{}: {e}", input.display()))?
                    .path();
                if path.is_file() && SourceKind::from_path(&path).is_some() {
                    files.push(path);
                }
            }
        } else {
            files.push(input.clone());
        }
    }
    files.sort();
    files.dedup();
    if files.is_empty() {
        return Err(format!(
            "no .wl or .ir files found under: {}",
            inputs
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    Ok(files.into_iter().map(Job::from_path).collect())
}

/// One `am-bench-dataflow/v1` record per optimized job of a pass. The
/// solver counters come from the cached result (deterministic in the
/// input); the phase timings are the job's own, so a cache hit reports
/// zeros. Failed and panicked jobs produce no record.
fn bench_records(report: &PipelineReport) -> Vec<BenchRecord> {
    report
        .jobs
        .iter()
        .filter_map(|job| {
            let o = job.optimized()?;
            let r = &o.result;
            Some(BenchRecord {
                label: job.name.clone(),
                nodes: r.nodes,
                instrs: r.instrs,
                points: r.points,
                wall_micros: o.timings.total().as_micros(),
                split_micros: o.timings.split.as_micros(),
                init_micros: o.timings.init.as_micros(),
                motion_micros: o.timings.motion.as_micros(),
                flush_micros: o.timings.flush.as_micros(),
                rounds: r.motion.rounds,
                converged: r.motion.converged,
                iterations: r.motion.iterations + r.flush.iterations,
                worklist_pushes: r.motion.worklist_pushes + r.flush.worklist_pushes,
                max_worklist_len: r.flush.max_worklist_len,
                eliminated: r.motion.eliminated,
                inserted: r.motion.inserted,
                removed: r.motion.removed,
                cache_hit: o.cache_hit,
            })
        })
        .collect()
}

/// The `--explain` pass: re-optimizes every job sequentially with the
/// provenance recorder enabled (no cache — a cache hit is exactly a run
/// whose decisions were not replayed), printing the human report and
/// optionally exporting per-job JSONL + report files. With `--prove`,
/// every `Eliminate` record's side condition (must-redundancy at the
/// recorded site) is additionally discharged statically by the symbolic
/// prover; the number of sites that were *refuted* (or could not be
/// located) is returned and fails the batch when nonzero.
fn run_explain(jobs: &[Job], opts: &Options) -> Result<usize, String> {
    if let Some(dir) = &opts.explain_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("--explain-dir {}: {e}", dir.display()))?;
    }
    let mut total = 0usize;
    let mut discharge_failed = 0usize;
    for job in jobs {
        let (kind, text) = match &job.input {
            JobInput::Memory { kind, text } => (*kind, text.clone()),
            JobInput::Path(path) => {
                let kind = SourceKind::from_path(path).ok_or_else(|| {
                    format!(
                        "{}: unknown file type (expected .wl or .ir)",
                        path.display()
                    )
                })?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                (kind, text)
            }
            JobInput::Poison => continue,
        };
        let graph =
            am_lang::compile_source(kind, &text).map_err(|e| format!("{}: {e}", job.name))?;
        let explanation = explain_graph(&graph, opts.max_motion_rounds);
        total += explanation.records.len();
        if let Some(dir) = &opts.explain_dir {
            let stem = job.name.replace(['/', '\\'], "_");
            let jsonl_path = dir.join(format!("{stem}.prov.jsonl"));
            std::fs::write(&jsonl_path, provenance::jsonl(&explanation.records))
                .map_err(|e| format!("{}: {e}", jsonl_path.display()))?;
            let txt_path = dir.join(format!("{stem}.prov.txt"));
            std::fs::write(&txt_path, provenance::report(&explanation.records))
                .map_err(|e| format!("{}: {e}", txt_path.display()))?;
        }
        if !opts.quiet {
            print!(
                "== explain {} ==\n{}",
                job.name,
                provenance::report(&explanation.records)
            );
        }
        if opts.prove {
            let report = am_prove::discharge_provenance(
                &graph,
                opts.max_motion_rounds,
                &am_prove::ProveConfig::default(),
            );
            discharge_failed += report.failed;
            if !opts.quiet || report.failed > 0 {
                println!("discharge {}: {report}", job.name);
                for site in report.sites.iter().filter(|s| {
                    s.status == am_prove::DischargeStatus::Failed
                        || s.status == am_prove::DischargeStatus::Unlocatable
                }) {
                    println!(
                        "  round {} node {} [{}] `{}`: {}",
                        site.round, site.node, site.index, site.instr, site.status
                    );
                }
            }
        }
    }
    match &opts.explain_dir {
        Some(dir) => println!(
            "explain: {} transformation(s) across {} job(s), exports under {}",
            total,
            jobs.len(),
            dir.display()
        ),
        None => println!(
            "explain: {} transformation(s) across {} job(s)",
            total,
            jobs.len()
        ),
    }
    if opts.prove && discharge_failed > 0 {
        eprintln!("amopt: {discharge_failed} provenance site(s) failed static discharge");
    }
    Ok(discharge_failed)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut jobs = if opts.inputs.is_empty() {
        Vec::new()
    } else {
        match collect_jobs(&opts.inputs) {
            Ok(j) => j,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        }
    };
    jobs.extend(synthetic_jobs(opts.synthetic));
    let (tracer, collector) = match &opts.trace {
        Some(_) => {
            let (t, c) = Tracer::collector();
            (t, Some(c))
        }
        None => (Tracer::disabled(), None),
    };
    let pipeline = Pipeline::new(PipelineConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        max_motion_rounds: opts.max_motion_rounds,
        verify: opts.verify,
        prove: opts.prove,
        lint: opts.lint,
        tracer,
        secondary: None,
    });
    let mut any_failed = false;
    let mut last_bench: Option<Vec<BenchRecord>> = None;
    for pass in 1..=opts.repeat {
        let report = pipeline.run(&jobs);
        if opts.bench_json.is_some() && pass == opts.repeat {
            last_bench = Some(bench_records(&report));
        }
        if opts.repeat > 1 && !opts.quiet {
            println!("== pass {pass}/{} ==", opts.repeat);
        }
        if opts.quiet {
            let verify = if opts.verify || opts.prove {
                format!(", {} verified", report.verified())
            } else {
                String::new()
            };
            let prove = if opts.prove {
                let c = report.proof_counts();
                format!(
                    ", proofs {}/{}/{} (p/r/i)",
                    c.proved, c.refuted, c.inconclusive
                )
            } else {
                String::new()
            };
            let lint = if opts.lint {
                format!(", {} lint error(s)", report.lint_errors())
            } else {
                String::new()
            };
            println!(
                "pass {pass}: {}/{} ok, {} cache hits{verify}{prove}{lint}, {:.2} ms",
                report.succeeded(),
                report.jobs.len(),
                report.cache_hits(),
                report.wall.as_secs_f64() * 1e3
            );
            println!(
                "cache: {} hits, {} misses, {} evictions ({:.0}% hit rate)",
                report.cache.hits,
                report.cache.misses,
                report.cache.evictions,
                report.cache.hit_rate() * 100.0
            );
            // Quiet suppresses the per-job table, never the failures: each
            // bad input still gets one clean per-file line on stderr.
            for job in &report.jobs {
                match &job.outcome {
                    // Failed messages already carry the job name as a prefix.
                    JobOutcome::Failed(e) => eprintln!("amopt: {e}"),
                    JobOutcome::Panicked(e) => eprintln!("amopt: {}: panicked: {e}", job.name),
                    JobOutcome::Optimized(_) => {}
                }
            }
        } else {
            println!("{report}");
        }
        if opts.emit && pass == 1 {
            for job in &report.jobs {
                if let JobOutcome::Optimized(o) = &job.outcome {
                    println!("== {} ==\n{}", job.name, o.result.canonical);
                }
            }
        }
        any_failed |=
            report.failed() + report.panicked() + report.verify_failed() + report.lint_errors() > 0;
    }
    if opts.explain {
        match run_explain(&jobs, &opts) {
            Ok(discharge_failed) => any_failed |= discharge_failed > 0,
            Err(msg) => {
                eprintln!("amopt: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let (Some(path), Some(records)) = (&opts.bench_json, &last_bench) {
        let doc = bench_json::render("amopt", records);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("--bench-json {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            println!(
                "bench: {} record(s) written to {}",
                records.len(),
                path.display()
            );
        }
    }
    if let (Some(path), Some(collector)) = (&opts.trace, &collector) {
        let events = collector.take();
        let out = match opts.trace_format {
            TraceFormat::Chrome => export::chrome_trace(&events),
            TraceFormat::Jsonl => export::jsonl(&events),
            TraceFormat::Summary => export::summary_tree(&events),
        };
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("--trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            println!(
                "trace: {} events written to {}",
                events.len(),
                path.display()
            );
        }
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
