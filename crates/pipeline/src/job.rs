//! Units of work and their outcomes.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use am_core::global::PhaseTimings;
use am_lang::SourceKind;

use crate::cache::CachedResult;

/// Where a job's program text comes from.
#[derive(Clone, Debug)]
pub enum JobInput {
    /// Read the file at run time; the kind is derived from the extension
    /// (`.wl` while-language, `.ir` flow-graph text).
    Path(PathBuf),
    /// In-memory source of a known kind.
    Memory {
        /// Which frontend parses `text`.
        kind: SourceKind,
        /// The program text.
        text: String,
    },
    /// Panics when processed. Exists so tests (and operators diagnosing a
    /// deployment) can verify that one crashing job fails alone without
    /// taking down its worker's remaining queue.
    Poison,
}

/// A named unit of work for the pipeline.
#[derive(Clone, Debug)]
pub struct Job {
    /// Display name (file path or caller-chosen label).
    pub name: String,
    /// The program source.
    pub input: JobInput,
}

impl Job {
    /// A job that reads and optimizes the file at `path`.
    pub fn from_path(path: impl Into<PathBuf>) -> Job {
        let path = path.into();
        Job {
            name: path.display().to_string(),
            input: JobInput::Path(path),
        }
    }

    /// A job over in-memory source text.
    pub fn from_source(name: impl Into<String>, kind: SourceKind, text: impl Into<String>) -> Job {
        Job {
            name: name.into(),
            input: JobInput::Memory {
                kind,
                text: text.into(),
            },
        }
    }

    /// A job that panics when processed (worker-isolation probe).
    pub fn poison(name: impl Into<String>) -> Job {
        Job {
            name: name.into(),
            input: JobInput::Poison,
        }
    }
}

/// What happened to one job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The program was optimized (or served from cache).
    Optimized(OptimizedJob),
    /// The job failed cleanly: I/O error, unknown extension, parse error.
    Failed(String),
    /// The job panicked; the payload is the panic message. Other jobs are
    /// unaffected.
    Panicked(String),
}

/// Where a job's result came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultSource {
    /// The optimizer ran; nothing cached matched.
    Fresh,
    /// Served from the in-memory [`ResultCache`](crate::ResultCache).
    Memory,
    /// Served from the configured
    /// [`SecondaryCache`](crate::cache::SecondaryCache) (and promoted into
    /// memory).
    Secondary,
}

impl ResultSource {
    /// Whether any cache tier served the result.
    pub fn is_cached(self) -> bool {
        !matches!(self, ResultSource::Fresh)
    }

    /// Stable lower-case label (`fresh`, `memory`, `disk`).
    pub fn label(self) -> &'static str {
        match self {
            ResultSource::Fresh => "fresh",
            ResultSource::Memory => "memory",
            ResultSource::Secondary => "disk",
        }
    }
}

/// A successful optimization, possibly served from the cache.
#[derive(Clone, Debug)]
pub struct OptimizedJob {
    /// Stable content hash of the *input* program (the cache key).
    pub input_hash: u64,
    /// Which tier produced the result.
    pub source: ResultSource,
    /// Whether the result came from a cache (memory or secondary).
    pub cache_hit: bool,
    /// The optimized program and its per-phase statistics.
    pub result: Arc<CachedResult>,
    /// Per-phase wall times of this job's own optimizer run; zero on a
    /// cache hit (nothing ran).
    pub timings: PhaseTimings,
    /// Translation-validation verdict: `None` when verification was not
    /// requested, `Some(Err(_))` names the failing phase. Present even on
    /// cache hits — the cache stores results, not validations.
    pub verification: Option<Result<(), String>>,
    /// Per-phase symbolic-prover verdict counts
    /// (proved/refuted/inconclusive): `None` unless the job ran with
    /// [`PipelineConfig::prove`](crate::PipelineConfig::prove).
    pub prove: Option<am_check::validate::VerdictCounts>,
}

/// One job's outcome plus its end-to-end wall time (I/O + parse + optimize).
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job's display name.
    pub name: String,
    /// What happened.
    pub outcome: JobOutcome,
    /// End-to-end wall time for this job on its worker.
    pub wall: Duration,
}

impl JobReport {
    /// The optimized payload, if the job succeeded.
    pub fn optimized(&self) -> Option<&OptimizedJob> {
        match &self.outcome {
            JobOutcome::Optimized(o) => Some(o),
            _ => None,
        }
    }
}
