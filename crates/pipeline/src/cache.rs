//! Content-addressed result cache.
//!
//! Keys are [`am_ir::alpha::stable_hash`] values of the *input* program, so
//! alpha-equivalent inputs (same program up to temporary naming) share one
//! entry. Values hold everything a job needs to report a result without
//! re-running the optimizer. Bounded LRU: when the cache is full, the least
//! recently touched entry is evicted.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use am_core::flush::FlushStats;
use am_core::global::PhaseTimings;
use am_core::init::InitStats;
use am_core::motion::MotionStats;
use am_lint::LintSummary;

/// The cached outcome of optimizing one program.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Canonical text of the optimized program ([`am_ir::alpha::canonical_text`]).
    pub canonical: String,
    /// Input CFG nodes (as parsed, before edge splitting).
    pub nodes: usize,
    /// Input instructions.
    pub instrs: usize,
    /// Instruction-level program points of the input.
    pub points: usize,
    /// Initialization statistics.
    pub init: InitStats,
    /// Assignment-motion statistics.
    pub motion: MotionStats,
    /// Final-flush statistics.
    pub flush: FlushStats,
    /// Critical edges split before the phases ran.
    pub edges_split: usize,
    /// Per-phase wall times of the run that produced this entry — the cost
    /// to (re)produce the result, kept for provenance. Jobs served from the
    /// cache report zero timings of their own (`OptimizedJob::timings`) but
    /// can still show what the original optimization cost.
    pub timings: PhaseTimings,
    /// `am-lint` findings on the optimized program. Deterministic in the
    /// input, so it is cached with the result; `None` when the entry was
    /// produced by a run without linting enabled.
    pub lint: Option<LintSummary>,
}

/// Counters describing the cache's behaviour so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups, in `[0, 1]`; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A second cache tier consulted on in-memory misses and fed on fresh
/// optimizations — typically persistent (the `am-serve` on-disk store).
///
/// The engine treats it as strictly slower and strictly larger than the
/// in-memory [`ResultCache`]: a successful [`load`](SecondaryCache::load)
/// is promoted into memory, and every freshly computed result is offered
/// via [`store`](SecondaryCache::store). Implementations must be safe to
/// call from many worker threads at once; both operations are best-effort
/// (an implementation may drop stores or miss loads without affecting
/// correctness, only reuse).
pub trait SecondaryCache: Send + Sync {
    /// Fetches the entry for `key`, if present.
    fn load(&self, key: u64) -> Option<CachedResult>;
    /// Offers a freshly computed entry for `key`.
    fn store(&self, key: u64, value: &CachedResult);
}

struct Inner {
    map: HashMap<u64, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

struct Slot {
    value: Arc<CachedResult>,
    last_used: u64,
}

/// A thread-safe bounded LRU cache keyed by stable program hash.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: u64) -> Option<Arc<CachedResult>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(slot) => {
                slot.last_used = tick;
                let value = Arc::clone(&slot.value);
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key`, evicting the least recently used entry
    /// if the cache is full. Returns the stored handle.
    pub fn insert(&self, key: u64, value: CachedResult) -> Arc<CachedResult> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // O(n) scan: the cache is small (hundreds of entries) and
            // eviction is rare next to hashing whole programs.
            if let Some(&oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&oldest);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Slot {
                value: Arc::clone(&value),
                last_used: tick,
            },
        );
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> CachedResult {
        CachedResult {
            canonical: tag.to_owned(),
            nodes: 0,
            instrs: 0,
            points: 0,
            init: InitStats::default(),
            motion: MotionStats::default(),
            flush: FlushStats::default(),
            edges_split: 0,
            timings: PhaseTimings::default(),
            lint: None,
        }
    }

    #[test]
    fn hit_miss_and_entry_counters() {
        let cache = ResultCache::new(8);
        assert!(cache.get(1).is_none());
        cache.insert(1, entry("one"));
        assert_eq!(cache.get(1).unwrap().canonical, "one");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(2);
        cache.insert(1, entry("one"));
        cache.insert(2, entry("two"));
        assert!(cache.get(1).is_some()); // warm 1; 2 is now coldest
        cache.insert(3, entry("three"));
        assert!(cache.get(2).is_none(), "cold entry evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn hit_rate_is_hits_over_lookups() {
        let cache = ResultCache::new(4);
        assert_eq!(cache.stats().hit_rate(), 0.0, "idle cache");
        cache.insert(1, entry("one"));
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ResultCache::new(2);
        cache.insert(1, entry("one"));
        cache.insert(2, entry("two"));
        cache.insert(1, entry("one'"));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(1).unwrap().canonical, "one'");
        assert!(cache.get(2).is_some());
    }
}
