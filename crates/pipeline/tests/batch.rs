//! End-to-end tests of the batch engine: content-addressed caching across
//! alpha-equivalent inputs, determinism across worker counts, per-job
//! panic isolation, and file-based corpora.

use std::path::PathBuf;

use am_ir::alpha::stable_hash;
use am_ir::random::{structured, SplitMix64, StructuredConfig};
use am_ir::text::{parse, to_text};
use am_lang::SourceKind;
use am_pipeline::{Job, JobOutcome, Pipeline, PipelineConfig};

fn pipeline_with(workers: usize) -> Pipeline {
    Pipeline::new(PipelineConfig {
        workers: Some(workers),
        ..Default::default()
    })
}

/// The per-job observable output: name plus the optimized canonical text
/// (or the failure class). Everything the engine promises to keep
/// deterministic.
fn observable(report: &am_pipeline::PipelineReport) -> String {
    report
        .jobs
        .iter()
        .map(|j| match &j.outcome {
            JobOutcome::Optimized(o) => {
                format!(
                    "{}\nhash {:016x}\n{}\n",
                    j.name, o.input_hash, o.result.canonical
                )
            }
            JobOutcome::Failed(e) => format!("{}\nFAILED {e}\n", j.name),
            JobOutcome::Panicked(e) => format!("{}\nPANICKED {e}\n", j.name),
        })
        .collect()
}

fn corpus(unique: usize) -> Vec<Job> {
    (0..unique)
        .map(|idx| {
            let mut rng = SplitMix64::new(0xBA7C_0000 + idx as u64);
            let g = structured(&mut rng, &StructuredConfig::default());
            Job::from_source(format!("job{idx}.ir"), SourceKind::Ir, to_text(&g))
        })
        .collect()
}

#[test]
fn alpha_equivalent_inputs_share_one_cache_entry() {
    // Same program, temporaries spelled differently: equal stable hashes,
    // so the second job is a cache hit.
    let a = "start s\nend e\nnode s { h_one := a+b; x := h_one }\nnode e { out(x) }\nedge s -> e";
    let b = "start s\nend e\nnode s { h_two := a+b; x := h_two }\nnode e { out(x) }\nedge s -> e";
    // Precondition: textual difference, hash equality. (`h_*` names parse
    // as temporaries only if the parser marks them; if these are plain
    // variables the hashes differ and the programs are genuinely distinct
    // — either way the next assertions must hold for equal-hash inputs.)
    let (ga, gb) = (parse(a).unwrap(), parse(b).unwrap());
    // One worker: with two, both jobs could miss concurrently before
    // either inserts, which is legal but not what this test pins.
    let p = pipeline_with(1);
    let jobs = vec![
        Job::from_source("a.ir", SourceKind::Ir, a),
        Job::from_source("b.ir", SourceKind::Ir, b),
    ];
    let report = p.run(&jobs);
    assert_eq!(report.succeeded(), 2);
    if stable_hash(&ga) == stable_hash(&gb) {
        assert_eq!(report.cache.hits, 1, "{report}");
        assert_eq!(report.cache.misses, 1, "{report}");
    }
    // Byte-identical duplicate content must hit regardless.
    let dup = vec![
        Job::from_source("c.ir", SourceKind::Ir, a),
        Job::from_source("d.ir", SourceKind::Ir, a),
    ];
    let p2 = pipeline_with(1);
    let report2 = p2.run(&dup);
    assert_eq!(report2.cache.hits, 1);
    assert_eq!(report2.cache.misses, 1);
    // The hit and the miss report the same optimized program.
    let outs: Vec<_> = report2
        .jobs
        .iter()
        .map(|j| &j.optimized().unwrap().result.canonical)
        .collect();
    assert_eq!(outs[0], outs[1]);
}

#[test]
fn rerunning_a_batch_is_served_from_cache() {
    let p = pipeline_with(4);
    let jobs = corpus(6);
    let first = p.run(&jobs);
    assert_eq!(first.succeeded(), 6);
    assert_eq!(first.cache.hits, 0);
    let second = p.run(&jobs);
    assert_eq!(second.succeeded(), 6);
    assert_eq!(second.cache.hits, 6, "whole second pass from cache");
    assert_eq!(second.cache_hits(), 6);
    assert_eq!(observable(&first), observable(&second));
    // Cache hits carry no fresh optimizer time.
    assert_eq!(second.phase_totals, Default::default());
}

#[test]
fn eviction_under_a_tiny_cache_still_produces_correct_results() {
    let p = Pipeline::new(PipelineConfig {
        workers: Some(2),
        cache_capacity: 2,
        ..Default::default()
    });
    let jobs = corpus(5);
    let first = p.run(&jobs);
    let second = p.run(&jobs);
    assert_eq!(first.succeeded(), 5);
    assert_eq!(second.succeeded(), 5);
    assert!(second.cache.evictions > 0, "{:?}", second.cache);
    assert!(second.cache.entries <= 2);
    // Evictions must never change answers.
    assert_eq!(observable(&first), observable(&second));
}

#[test]
fn output_is_byte_identical_across_worker_counts() {
    let jobs = {
        let mut jobs = corpus(10);
        // Mix in a failure and a duplicate so ordering of every outcome
        // class is covered.
        jobs.push(Job::from_source(
            "broken.ir",
            SourceKind::Ir,
            "start\nnot a program",
        ));
        let dup = jobs[0].clone();
        jobs.push(Job {
            name: "dup_of_job0.ir".into(),
            ..dup
        });
        jobs
    };
    let baseline = observable(&pipeline_with(1).run(&jobs));
    for workers in [2, 4, 8] {
        let out = observable(&pipeline_with(workers).run(&jobs));
        assert_eq!(out, baseline, "workers={workers}");
    }
}

#[test]
fn batch_cache_deltas_are_deterministic_and_per_batch() {
    // Cumulative counters grow across batches; the batch_* fields must
    // isolate each run's own traffic. One worker makes the hit/miss split
    // deterministic (no concurrent double-miss on duplicates).
    let p = pipeline_with(1);
    let jobs = corpus(5);
    let first = p.run(&jobs);
    assert_eq!(first.batch_cache_hits, 0, "{first}");
    assert_eq!(first.batch_cache_misses, 5);
    let second = p.run(&jobs);
    assert_eq!(second.batch_cache_hits, 5, "whole second batch from cache");
    assert_eq!(second.batch_cache_misses, 0);
    // Cumulative keeps growing while the batch view resets.
    assert_eq!(second.cache.hits, 5);
    assert_eq!(second.cache.misses, 5);
    let third = p.run(&jobs);
    assert_eq!(third.batch_cache_hits, 5);
    assert_eq!(third.cache.hits, 10);
    // The report text carries both views.
    assert!(
        third.to_string().contains("batch 5 hits, 0 misses"),
        "{third}"
    );
    // Determinism across fresh pipelines: identical batches on identical
    // engines report identical batch fields.
    let again = pipeline_with(1).run(&jobs);
    assert_eq!(again.batch_cache_hits, first.batch_cache_hits);
    assert_eq!(again.batch_cache_misses, first.batch_cache_misses);
    assert_eq!(observable(&again), observable(&first));
}

#[test]
fn a_traced_run_records_job_and_batch_events() {
    let (tracer, collector) = am_trace::Tracer::collector();
    let p = Pipeline::new(PipelineConfig {
        workers: Some(2),
        tracer,
        ..Default::default()
    });
    let jobs = corpus(3);
    let report = p.run(&jobs);
    assert_eq!(report.succeeded(), 3);
    let events = collector.take();
    let spans_named = |name: &str| {
        events
            .iter()
            .filter(|e| e.name == name && e.dur_micros().is_some())
            .count()
    };
    assert_eq!(spans_named("job"), 3, "one span per job");
    assert_eq!(spans_named("batch"), 1);
    assert_eq!(spans_named("optimize"), 3, "optimizer root span per job");
    // The batch cache counter mirrors the report's delta fields.
    let cache = events
        .iter()
        .find(|e| e.cat == "batch" && e.name == "cache")
        .expect("batch cache counter");
    assert_eq!(cache.arg("hits"), Some(report.batch_cache_hits as i64));
    assert_eq!(cache.arg("misses"), Some(report.batch_cache_misses as i64));
    // Analysis counters made it out of the solver.
    assert!(events
        .iter()
        .any(|e| e.cat == "analysis" && e.name == "rae" && e.arg("iterations").unwrap_or(0) > 0));
}

#[test]
fn a_panicking_job_fails_alone() {
    let mut jobs = corpus(4);
    jobs.insert(2, Job::poison("poison"));
    let report = pipeline_with(3).run(&jobs);
    assert_eq!(report.jobs.len(), 5);
    assert_eq!(report.succeeded(), 4, "{report}");
    assert_eq!(report.panicked(), 1);
    let poisoned = &report.jobs[2];
    assert_eq!(poisoned.name, "poison");
    match &poisoned.outcome {
        JobOutcome::Panicked(msg) => assert!(msg.contains("poison"), "{msg}"),
        other => panic!("expected panic outcome, got {other:?}"),
    }
    // And the engine stays usable afterwards.
    let again = pipeline_with(3).run(&corpus(2));
    assert_eq!(again.succeeded(), 2);
}

#[test]
fn motion_round_budget_terminates_and_reports_nonconvergence() {
    let p = Pipeline::new(PipelineConfig {
        workers: Some(1),
        max_motion_rounds: Some(0),
        ..Default::default()
    });
    let report = p.run(&corpus(2));
    assert_eq!(report.succeeded(), 2, "budget exhaustion is not an error");
    for job in &report.jobs {
        let o = job.optimized().unwrap();
        assert_eq!(o.result.motion.rounds, 0);
    }
}

#[test]
fn verification_runs_per_job_and_also_on_cache_hits() {
    let p = Pipeline::new(PipelineConfig {
        workers: Some(2),
        verify: true,
        ..Default::default()
    });
    let jobs = corpus(4);
    let first = p.run(&jobs);
    assert_eq!(first.succeeded(), 4);
    assert_eq!(first.verified(), 4, "{first}");
    assert_eq!(first.verify_failed(), 0);
    for job in &first.jobs {
        assert!(matches!(
            job.optimized().unwrap().verification,
            Some(Ok(()))
        ));
    }
    // The cache stores results, not validations: a cache-served pass is
    // still verified.
    let second = p.run(&jobs);
    assert_eq!(second.cache_hits(), 4);
    assert_eq!(second.verified(), 4, "{second}");
    // And the summary mentions it.
    assert!(second.to_string().contains("verify: 4 ok, 0 failed"));
}

#[test]
fn proving_discharges_jobs_statically_and_reports_counts() {
    let p = Pipeline::new(PipelineConfig {
        workers: Some(2),
        prove: true, // implies verification; --verify itself stays off
        ..Default::default()
    });
    let report = p.run(&corpus(4));
    assert_eq!(report.succeeded(), 4);
    assert_eq!(report.verified(), 4, "{report}");
    assert_eq!(report.verify_failed(), 0);
    let counts = report.proof_counts();
    assert_eq!(counts.refuted, 0, "{report}");
    assert!(counts.proved > 0, "{report}");
    for job in &report.jobs {
        let o = job.optimized().unwrap();
        assert!(matches!(o.verification, Some(Ok(()))));
        assert!(o.prove.as_ref().is_some_and(|c| c.total() > 0), "{report}");
    }
    assert!(report.to_string().contains("prove:"), "{report}");
}

#[test]
fn without_the_flag_no_verification_verdicts_are_reported() {
    let report = pipeline_with(2).run(&corpus(2));
    assert_eq!(report.verified(), 0);
    assert_eq!(report.verify_failed(), 0);
    for job in &report.jobs {
        assert!(job.optimized().unwrap().verification.is_none());
    }
    assert!(!report.to_string().contains("verify:"));
}

#[test]
fn a_malformed_ir_file_fails_alone_with_a_clean_diagnostic() {
    // Regression: a job file that fails to parse (or read) must produce a
    // per-file `Failed` outcome with a located message — never a panic, and
    // never abort the rest of the batch.
    let dir = std::env::temp_dir().join(format!("am_pipeline_badir_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.ir");
    std::fs::write(
        &bad,
        "start s\nend e\nnode s { x := a+b }\nthis line is not ir\n",
    )
    .unwrap();
    let good = dir.join("good.ir");
    std::fs::write(
        &good,
        "start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e",
    )
    .unwrap();
    let missing = dir.join("does_not_exist.ir");

    let jobs = vec![
        Job::from_path(bad.clone()),
        Job::from_path(good),
        Job::from_path(missing.clone()),
    ];
    let report = pipeline_with(2).run(&jobs);
    assert_eq!(report.succeeded(), 1, "{report}");
    assert_eq!(report.failed(), 2);
    assert_eq!(report.panicked(), 0, "parse failures must not panic");
    match &report.jobs[0].outcome {
        JobOutcome::Failed(e) => {
            assert!(e.contains("bad.ir"), "names the file: {e}");
            assert!(e.contains("line 4"), "locates the error: {e}");
        }
        other => panic!("{other:?}"),
    }
    match &report.jobs[2].outcome {
        JobOutcome::Failed(e) => assert!(e.contains("does_not_exist.ir"), "{e}"),
        other => panic!("{other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A secondary tier backed by a plain mutexed map, standing in for the
/// on-disk store: counts loads and stores so the layering contract
/// (memory first, secondary on miss, store on fresh) is observable.
struct MapSecondary {
    map: std::sync::Mutex<std::collections::HashMap<u64, am_pipeline::CachedResult>>,
    loads: std::sync::atomic::AtomicUsize,
    stores: std::sync::atomic::AtomicUsize,
}

impl MapSecondary {
    fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(MapSecondary {
            map: std::sync::Mutex::new(std::collections::HashMap::new()),
            loads: std::sync::atomic::AtomicUsize::new(0),
            stores: std::sync::atomic::AtomicUsize::new(0),
        })
    }
}

impl am_pipeline::SecondaryCache for MapSecondary {
    fn load(&self, key: u64) -> Option<am_pipeline::CachedResult> {
        self.loads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.map.lock().unwrap().get(&key).cloned()
    }

    fn store(&self, key: u64, value: &am_pipeline::CachedResult) {
        self.stores
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.map.lock().unwrap().insert(key, value.clone());
    }
}

#[test]
fn secondary_cache_is_layered_under_the_memory_cache() {
    use am_pipeline::ResultSource;
    use std::sync::atomic::Ordering;

    let secondary = MapSecondary::new();
    let jobs = corpus(4);
    let p = Pipeline::new(PipelineConfig {
        workers: Some(1),
        secondary: Some(secondary.clone()),
        ..Default::default()
    });
    let first = p.run(&jobs);
    assert_eq!(first.succeeded(), 4);
    for job in &first.jobs {
        assert_eq!(job.optimized().unwrap().source, ResultSource::Fresh);
    }
    assert_eq!(
        secondary.stores.load(Ordering::Relaxed),
        4,
        "fresh results offered"
    );
    assert_eq!(first.secondary_hits(), 0);

    // Same engine again: memory hits, secondary untouched.
    let loads_before = secondary.loads.load(Ordering::Relaxed);
    let second = p.run(&jobs);
    assert_eq!(second.cache_hits(), 4);
    for job in &second.jobs {
        assert_eq!(job.optimized().unwrap().source, ResultSource::Memory);
    }
    assert_eq!(secondary.loads.load(Ordering::Relaxed), loads_before);

    // A cold engine sharing the secondary: everything served from the
    // secondary tier, promoted into memory, bit-identical output.
    let cold = Pipeline::new(PipelineConfig {
        workers: Some(1),
        secondary: Some(secondary.clone()),
        ..Default::default()
    });
    let third = cold.run(&jobs);
    assert_eq!(third.succeeded(), 4);
    assert_eq!(third.secondary_hits(), 4, "{third}");
    for job in &third.jobs {
        let o = job.optimized().unwrap();
        assert_eq!(o.source, ResultSource::Secondary);
        assert!(o.cache_hit);
        assert!(o.source.is_cached());
    }
    assert_eq!(observable(&first), observable(&third));
    assert_eq!(secondary.stores.load(Ordering::Relaxed), 4, "no re-stores");

    // And once promoted, the cold engine serves from memory.
    let fourth = cold.run(&jobs);
    for job in &fourth.jobs {
        assert_eq!(job.optimized().unwrap().source, ResultSource::Memory);
    }
}

#[test]
fn file_jobs_dispatch_on_extension() {
    let dir = std::env::temp_dir().join(format!("am_pipeline_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wl = dir.join("prog.wl");
    let ir = dir.join("prog.ir");
    let txt = dir.join("prog.txt");
    std::fs::write(&wl, "x := (a+b)*(a+b); print(x);").unwrap();
    std::fs::write(
        &ir,
        "start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e",
    )
    .unwrap();
    std::fs::write(&txt, "not a program").unwrap();
    let missing = dir.join("missing.ir");

    let jobs: Vec<Job> = [&wl, &ir, &txt, &missing]
        .into_iter()
        .map(|p: &PathBuf| Job::from_path(p.clone()))
        .collect();
    let report = pipeline_with(2).run(&jobs);
    assert_eq!(report.succeeded(), 2);
    assert_eq!(report.failed(), 2);
    assert!(
        matches!(report.jobs[0].outcome, JobOutcome::Optimized(_)),
        "wl compiles"
    );
    assert!(
        matches!(report.jobs[1].outcome, JobOutcome::Optimized(_)),
        "ir parses"
    );
    match &report.jobs[2].outcome {
        JobOutcome::Failed(e) => assert!(e.contains("unknown file type"), "{e}"),
        other => panic!("{other:?}"),
    }
    assert!(
        matches!(report.jobs[3].outcome, JobOutcome::Failed(_)),
        "missing file"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
