//! Differential test for the `--explain` provenance log: on the whole
//! 80-program corpus, the recorded decision sites must replay the *exact*
//! multiset delta between the optimizer's phase snapshots — every
//! eliminated, hoisted and flushed assignment accounted for, nothing
//! extra, nothing missing — and the per-kind record counts must equal the
//! aggregate counters the optimizer reports.

use std::collections::HashMap;

use am_ir::random::corpus80;
use am_ir::FlowGraph;
use am_obs::{ProvKind, ProvRecord, ProvRecorder};
use am_pipeline::explain_graph;

/// Per-site instruction multiset: (block label, instruction text) → count.
type Multiset = HashMap<(String, String), i64>;

fn multiset(g: &FlowGraph) -> Multiset {
    let mut m = Multiset::new();
    for n in g.nodes() {
        let label = g.label(n).to_owned();
        for instr in &g.block(n).instrs {
            *m.entry((label.clone(), instr.display(g.pool())))
                .or_insert(0) += 1;
        }
    }
    m
}

/// Applies a decision log to the multiset: removals decrement, insertions
/// increment, reconstructions swap `instr` for `new_instr` in place.
fn apply(name: &str, m: &mut Multiset, records: &[ProvRecord]) {
    for r in records {
        let key = (r.node.clone(), r.instr.clone());
        match r.kind {
            ProvKind::HoistInsert | ProvKind::FlushInsert => {
                assert!(r.new_instr.is_none(), "{name}: insertion with new_instr");
                *m.entry(key).or_insert(0) += 1;
            }
            ProvKind::Eliminate | ProvKind::HoistRemove | ProvKind::FlushRemove => {
                assert!(r.new_instr.is_none(), "{name}: removal with new_instr");
                *m.entry(key).or_insert(0) -= 1;
            }
            ProvKind::FlushReconstruct => {
                let new_instr = r
                    .new_instr
                    .clone()
                    .unwrap_or_else(|| panic!("{name}: reconstruction without new_instr"));
                *m.entry(key).or_insert(0) -= 1;
                *m.entry((r.node.clone(), new_instr)).or_insert(0) += 1;
            }
        }
    }
}

fn normalized(m: &Multiset) -> Multiset {
    m.iter()
        .filter(|(_, &count)| count != 0)
        .map(|(k, &count)| (k.clone(), count))
        .collect()
}

fn count(records: &[ProvRecord], kind: ProvKind) -> usize {
    records.iter().filter(|r| r.kind == kind).count()
}

/// Recording provenance must be observation only: the explained run's
/// final program is bit-identical to the normal (recorder-disabled)
/// pipeline run, and the default path really is the disabled one-branch
/// recorder — no records accumulate anywhere a caller didn't ask for them.
#[test]
fn recording_never_perturbs_the_optimization() {
    let disabled = ProvRecorder::default();
    assert!(!disabled.is_enabled(), "default recorder is disabled");
    assert!(disabled.take().is_empty());

    let pipeline = am_pipeline::Pipeline::new(am_pipeline::PipelineConfig::default());
    for (name, g) in corpus80().into_iter().take(12) {
        let normal = pipeline.optimize_graph(&g);
        let explained = explain_graph(&g, None);
        assert_eq!(
            am_ir::alpha::canonical_text(&explained.result.program),
            normal.result.canonical,
            "{name}: explained program differs from the normal run"
        );
    }
}

#[test]
fn provenance_replays_the_exact_corpus_delta() {
    for (name, g) in corpus80() {
        let explanation = explain_graph(&g, None);
        let result = &explanation.result;
        let records = &explanation.records;
        assert!(result.motion.converged, "{name}: did not converge");

        // Records arrive in application order: every motion record strictly
        // before every flush record.
        let split = records.iter().position(|r| r.phase == "flush");
        let (motion_records, flush_records) = match split {
            Some(i) => {
                assert!(
                    records[i..].iter().all(|r| r.phase == "flush"),
                    "{name}: motion record after a flush record"
                );
                records.split_at(i)
            }
            None => (&records[..], &records[..0]),
        };

        // Per-kind record counts equal the optimizer's aggregate counters:
        // one provenance line per eliminated/moved assignment, exactly.
        assert_eq!(
            count(motion_records, ProvKind::Eliminate),
            result.motion.eliminated,
            "{name}: eliminations"
        );
        assert_eq!(
            count(motion_records, ProvKind::HoistInsert),
            result.motion.inserted,
            "{name}: hoist insertions"
        );
        assert_eq!(
            count(motion_records, ProvKind::HoistRemove),
            result.motion.removed,
            "{name}: hoist removals"
        );
        assert_eq!(
            count(flush_records, ProvKind::FlushInsert),
            result.flush.inserted,
            "{name}: flush insertions"
        );
        assert_eq!(
            count(flush_records, ProvKind::FlushRemove),
            result.flush.instances_removed,
            "{name}: flush removals"
        );
        assert_eq!(
            count(flush_records, ProvKind::FlushReconstruct),
            result.flush.reconstructed,
            "{name}: reconstructions"
        );

        // Replay the decision log over the post-initialization snapshot:
        // the motion records must land exactly on the post-motion snapshot,
        // and the flush records on the final program. Any unrecorded or
        // misattributed transformation breaks the multiset equality.
        let after_init = result.after_init.as_ref().expect("snapshots kept");
        let after_motion = result.after_motion.as_ref().expect("snapshots kept");
        let mut m = multiset(after_init);
        apply(&name, &mut m, motion_records);
        assert_eq!(
            normalized(&m),
            multiset(after_motion),
            "{name}: motion records do not replay the motion delta"
        );
        apply(&name, &mut m, flush_records);
        assert_eq!(
            normalized(&m),
            multiset(&result.program),
            "{name}: flush records do not replay the flush delta"
        );
    }
}
