//! Classic bit-vector analyses as framework instances.
//!
//! These serve two purposes: they validate the solver against well-known
//! semantics, and they are building blocks for the baseline transformations
//! (the lazy-code-motion baseline uses down-safety/anticipability; copy
//! propagation uses reaching copies; assignment sinking uses liveness).

use am_bitset::BitSet;
use am_ir::{AssignPattern, FlowGraph, Instr, PatternUniverse, Term, Var};

use crate::masks::PatternMasks;
use crate::points::{PointGraph, PointId};
use crate::solve::{solve_scheduled, Confluence, Direction, Problem, Solution};

/// Whether `instr` is transparent for expression `t`: it modifies no
/// operand of `t`.
pub fn expr_transparent(instr: &Instr, t: Term) -> bool {
    match instr.def() {
        Some(d) => !t.mentions(d),
        None => true,
    }
}

/// Whether `instr` computes `t` (an occurrence of the expression pattern).
pub fn expr_computed(instr: &Instr, t: Term) -> bool {
    let mut found = false;
    instr.for_each_expr_occurrence(|occ| found |= occ == t);
    found
}

/// Shared expression-pattern row construction: gen = computed occurrences,
/// kill = patterns mentioning the defined variable ([`PatternMasks`] makes
/// both a constant number of word-level operations per point). When
/// `kill_removes_gen`, an instruction that both computes and kills a
/// pattern (`x := x+1`) does not generate it — availability semantics;
/// anticipability keeps the gen bit (the computation lies upstream of the
/// modification in its direction).
fn expr_problem(
    pg: &PointGraph<'_>,
    universe: &PatternUniverse,
    direction: Direction,
    confluence: Confluence,
    kill_removes_gen: bool,
) -> Problem {
    let masks = PatternMasks::build(universe, pg.graph().pool().len());
    let mut p = Problem::new(direction, confluence, pg.len(), universe.expr_count());
    for point in pg.points() {
        let Some(instr) = pg.instr(point) else {
            continue;
        };
        let idx = point.index();
        instr.for_each_expr_occurrence(|occ| {
            if let Some(i) = universe.expr_id(&occ) {
                p.gen[idx].insert(i);
            }
        });
        if let Some(d) = instr.def() {
            let mentions = masks.expr_mentions(d);
            p.kill[idx].union_with(mentions);
            if kill_removes_gen {
                p.gen[idx].difference_with(mentions);
            }
        }
    }
    p
}

/// The [`available_expressions`] problem, for callers that want to inspect
/// or solve the system themselves.
pub fn available_expressions_problem(pg: &PointGraph<'_>, universe: &PatternUniverse) -> Problem {
    expr_problem(pg, universe, Direction::Forward, Confluence::Must, true)
}

/// Available expressions: expression `t` is available at a point when every
/// path from the start computes `t` afterwards unmodified. Forward, must,
/// greatest solution.
pub fn available_expressions(pg: &PointGraph<'_>, universe: &PatternUniverse) -> Solution {
    let p = available_expressions_problem(pg, universe);
    solve_scheduled(pg.succs(), pg.preds(), &p, pg.schedule())
}

/// The [`anticipated_expressions`] problem.
pub fn anticipated_expressions_problem(pg: &PointGraph<'_>, universe: &PatternUniverse) -> Problem {
    expr_problem(pg, universe, Direction::Backward, Confluence::Must, false)
}

/// Anticipability (down-safety): expression `t` is anticipated at a point
/// when every path to the end computes `t` before an operand changes.
/// Backward, must, greatest solution.
pub fn anticipated_expressions(pg: &PointGraph<'_>, universe: &PatternUniverse) -> Solution {
    let p = anticipated_expressions_problem(pg, universe);
    solve_scheduled(pg.succs(), pg.preds(), &p, pg.schedule())
}

/// Partially available expressions: expression `t` is partially available
/// at a point when *some* path from the start computes `t` afterwards
/// unmodified. Forward, may, least solution.
///
/// The gap between this and [`available_expressions`] is exactly partial
/// redundancy: a computation of `t` whose entry point has `t` partially but
/// not fully available is the situation expression motion (Thm 5.2)
/// exists to eliminate — `am-lint` re-solves both on optimizer output to
/// check that statically.
pub fn partially_available_expressions(
    pg: &PointGraph<'_>,
    universe: &PatternUniverse,
) -> Solution {
    let p = partially_available_expressions_problem(pg, universe);
    solve_scheduled(pg.succs(), pg.preds(), &p, pg.schedule())
}

/// The [`partially_available_expressions`] problem. An instruction that
/// both computes and kills (`x := x+1`) leaves the stale value unavailable
/// on every path, so kill removes gen here too.
pub fn partially_available_expressions_problem(
    pg: &PointGraph<'_>,
    universe: &PatternUniverse,
) -> Problem {
    expr_problem(pg, universe, Direction::Forward, Confluence::May, true)
}

/// Strongly live (non-faint) variables: `v` is strongly live at a point
/// when some path to the end *observes* `v` — reads it in an `out` or a
/// branch condition, or reads it in an assignment whose target is itself
/// strongly live after the assignment (Sec. 3's faintness, the complement).
///
/// Strictly stronger than [`live_variables`]: a chain `a := 1; b := a`
/// ending unread keeps `a` classically live (the `b := a` read) but not
/// strongly live — the whole chain is faint. The conditional transfer
/// (uses count only under a strongly live target) is not a gen/kill system,
/// so this runs its own worklist fixpoint; backward, may, least solution,
/// reported in the same [`Solution`] shape as the framework instances.
pub fn strongly_live_variables(pg: &PointGraph<'_>) -> Solution {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let g = pg.graph();
    let n = pg.len();
    let vars = g.pool().len();
    let succs = pg.succs();
    let preds = pg.preds();
    let schedule = pg.schedule();
    let mut before = vec![BitSet::new(vars); n];
    let mut after = vec![BitSet::new(vars); n];
    let mut iterations: u64 = 0;
    let mut on_list = vec![true; n];
    // Same priority discipline as the gen/kill solver: post-order ranks
    // for a backward propagation, each point queued at most once.
    let mut worklist: BinaryHeap<Reverse<u32>> = (0..n)
        .map(|p| Reverse(schedule.rank(Direction::Backward, p)))
        .collect();
    let mut worklist_pushes = n as u64;
    let mut max_worklist_len = n;
    let mut scratch = BitSet::new(vars);
    while let Some(Reverse(rank)) = worklist.pop() {
        let p = schedule.point_at(Direction::Backward, rank);
        on_list[p] = false;
        iterations += 1;
        // Merge: strongly-live-after = Σ over successors (exit stays ⊥).
        scratch.clear();
        for &q in &succs[p] {
            scratch.union_with(&before[q as usize]);
        }
        after[p].copy_from(&scratch);
        match pg.instr(PointId(p as u32)) {
            Some(Instr::Assign { lhs, rhs }) => {
                let target_live = scratch.contains(lhs.index());
                scratch.remove(lhs.index());
                if target_live {
                    rhs.for_each_var(|v| {
                        scratch.insert(v.index());
                    });
                }
            }
            Some(Instr::Out(ops)) => {
                for op in ops {
                    if let Some(v) = op.as_var() {
                        scratch.insert(v.index());
                    }
                }
            }
            Some(Instr::Branch(c)) => {
                c.for_each_var(|v| {
                    scratch.insert(v.index());
                });
            }
            Some(Instr::Skip) | None => {}
        }
        if before[p].copy_from(&scratch) {
            for &q in &preds[p] {
                let q = q as usize;
                if !on_list[q] {
                    on_list[q] = true;
                    worklist.push(Reverse(schedule.rank(Direction::Backward, q)));
                    worklist_pushes += 1;
                }
            }
            max_worklist_len = max_worklist_len.max(worklist.len());
        }
    }
    Solution {
        before,
        after,
        iterations,
        worklist_pushes,
        max_worklist_len,
    }
}

/// Live variables: variable `v` is live at a point when some path to the
/// end reads `v` before writing it. Backward, may, least solution.
pub fn live_variables(pg: &PointGraph<'_>) -> Solution {
    let p = live_variables_problem(pg);
    solve_scheduled(pg.succs(), pg.preds(), &p, pg.schedule())
}

/// The [`live_variables`] problem.
pub fn live_variables_problem(pg: &PointGraph<'_>) -> Problem {
    let g = pg.graph();
    let n = pg.len();
    let vars = g.pool().len();
    let mut p = Problem::new(Direction::Backward, Confluence::May, n, vars);
    for point in pg.points() {
        if let Some(instr) = pg.instr(point) {
            let idx = point.index();
            // live-before = uses ∪ (live-after ∖ def); the solver applies
            // gen after kill, so `x := x+1` correctly stays live before.
            instr.for_each_use(|v| {
                p.gen[idx].insert(v.index());
            });
            if let Some(d) = instr.def() {
                p.kill[idx].insert(d.index());
            }
        }
    }
    p
}

/// Reaching copies: the copy `x := y` (or constant copy `x := 5`) reaches a
/// point when it was executed on every path and neither `x` nor its source
/// changed since. Forward, must, greatest solution. The universe is the set
/// of trivial assignment patterns of `universe` (identified by their
/// assignment-pattern index).
pub fn reaching_copies(pg: &PointGraph<'_>, universe: &PatternUniverse) -> Solution {
    let p = reaching_copies_problem(pg, universe);
    solve_scheduled(pg.succs(), pg.preds(), &p, pg.schedule())
}

/// The [`reaching_copies`] problem.
pub fn reaching_copies_problem(pg: &PointGraph<'_>, universe: &PatternUniverse) -> Problem {
    let masks = PatternMasks::build(universe, pg.graph().pool().len());
    let n = pg.len();
    let mut p = Problem::new(
        Direction::Forward,
        Confluence::Must,
        n,
        universe.assign_count(),
    );
    for point in pg.points() {
        let Some(instr) = pg.instr(point) else {
            continue;
        };
        let idx = point.index();
        // The instruction's own pattern, when it is itself a copy.
        let own = match instr {
            Instr::Assign { lhs, rhs } if matches!(rhs, Term::Operand(_)) => {
                universe.assign_id(&AssignPattern::new(*lhs, *rhs))
            }
            _ => None,
        };
        if let Some(i) = own {
            p.gen[idx].insert(i);
        }
        if let Some(d) = instr.def() {
            // Kill every copy reading or writing the defined variable —
            // except the copy this instruction executes, which re-reaches.
            let kill = &mut p.kill[idx];
            kill.union_with(masks.assign_lhs(d));
            kill.union_with(masks.assign_mentions(d));
            kill.intersect_with(masks.trivial_assigns());
            if let Some(i) = own {
                kill.remove(i);
            }
        }
    }
    p
}

/// Convenience: the set of variables live before point `p`.
pub fn live_before(sol: &Solution, p: PointId, g: &FlowGraph) -> Vec<Var> {
    let set: &BitSet = &sol.before[p.index()];
    g.pool()
        .iter()
        .filter(|v| set.contains(v.index()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::parse;
    use am_ir::BinOp;

    fn fig1() -> FlowGraph {
        // Fig. 1(a): a+b computed in nodes 2 and 3, join in 4.
        parse(
            "start 1\nend 4\n\
             node 1 { skip }\n\
             node 2 { z := a+b; x := a+b }\n\
             node 3 { x := a+b; y := x+y }\n\
             node 4 { out(x,y,z) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap()
    }

    #[test]
    fn availability_after_both_branches() {
        let g = fig1();
        let pg = PointGraph::build(&g);
        let u = PatternUniverse::collect(&g);
        let sol = available_expressions(&pg, &u);
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let ab = u.expr_id(&Term::binary(BinOp::Add, a, b)).unwrap();
        let n4 = g.end();
        assert!(sol.before[pg.first_of(n4).index()].contains(ab));
        let n1 = g.start();
        assert!(!sol.after[pg.last_of(n1).index()].contains(ab));
    }

    #[test]
    fn availability_killed_by_operand_write() {
        let g = parse(
            "start 1\nend 3\n\
             node 1 { x := a+b }\n\
             node 2 { a := 0 }\n\
             node 3 { out(x) }\n\
             edge 1 -> 2\nedge 2 -> 3",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let u = PatternUniverse::collect(&g);
        let sol = available_expressions(&pg, &u);
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let ab = u.expr_id(&Term::binary(BinOp::Add, a, b)).unwrap();
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        assert!(sol.before[pg.first_of(n2).index()].contains(ab));
        assert!(!sol.after[pg.last_of(n2).index()].contains(ab));
    }

    #[test]
    fn anticipability_holds_before_both_branch_computations() {
        let g = fig1();
        let pg = PointGraph::build(&g);
        let u = PatternUniverse::collect(&g);
        let sol = anticipated_expressions(&pg, &u);
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let ab = u.expr_id(&Term::binary(BinOp::Add, a, b)).unwrap();
        // a+b is computed on both branches, so it is anticipated at node 1.
        assert!(sol.before[pg.first_of(g.start()).index()].contains(ab));
        // But not at node 4 (never computed afterwards).
        assert!(!sol.before[pg.first_of(g.end()).index()].contains(ab));
    }

    #[test]
    fn liveness_through_branches() {
        let g = parse(
            "start 1\nend 4\n\
             node 1 { x := 1; y := 2 }\n\
             node 2 { out(x) }\n\
             node 3 { out(y) }\n\
             node 4 { skip }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let sol = live_variables(&pg);
        let x = g.pool().lookup("x").unwrap();
        let y = g.pool().lookup("y").unwrap();
        // Both x and y are live at the end of node 1 (different branches).
        let last1 = pg.last_of(g.start());
        assert!(sol.after[last1.index()].contains(x.index()));
        assert!(sol.after[last1.index()].contains(y.index()));
        // x is dead after node 2's out.
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        assert!(!sol.after[pg.last_of(n2).index()].contains(x.index()));
    }

    #[test]
    fn self_increment_keeps_variable_live() {
        let g =
            parse("start 1\nend 2\nnode 1 { i := i+1 }\nnode 2 { out(i) }\nedge 1 -> 2").unwrap();
        let pg = PointGraph::build(&g);
        let sol = live_variables(&pg);
        let i = g.pool().lookup("i").unwrap();
        assert!(sol.before[pg.entry().index()].contains(i.index()));
    }

    #[test]
    fn reaching_copy_killed_by_source_write() {
        let g = parse(
            "start 1\nend 3\n\
             node 1 { x := y }\n\
             node 2 { y := 0 }\n\
             node 3 { out(x) }\n\
             edge 1 -> 2\nedge 2 -> 3",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let u = PatternUniverse::collect(&g);
        let sol = reaching_copies(&pg, &u);
        let x = g.pool().lookup("x").unwrap();
        let y = g.pool().lookup("y").unwrap();
        let copy = u.assign_id(&am_ir::AssignPattern::new(x, y)).unwrap();
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        assert!(sol.before[pg.first_of(n2).index()].contains(copy));
        assert!(!sol.after[pg.last_of(n2).index()].contains(copy));
    }

    #[test]
    fn partial_availability_holds_on_one_branch() {
        // a+b computed only on the left branch: partially but not fully
        // available at the join — the textbook partial redundancy.
        let g = parse(
            "start 1\nend 4\n\
             node 1 { skip }\n\
             node 2 { x := a+b }\n\
             node 3 { skip }\n\
             node 4 { y := a+b; out(x,y) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let u = PatternUniverse::collect(&g);
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let ab = u.expr_id(&Term::binary(BinOp::Add, a, b)).unwrap();
        let join = pg.first_of(g.end()).index();
        let may = partially_available_expressions(&pg, &u);
        let must = available_expressions(&pg, &u);
        assert!(may.before[join].contains(ab));
        assert!(!must.before[join].contains(ab));
        // Nothing is even partially available at the start boundary.
        assert!(!may.before[pg.entry().index()].contains(ab));
    }

    #[test]
    fn partial_availability_killed_by_operand_write() {
        let g = parse(
            "start 1\nend 3\n\
             node 1 { x := a+b }\n\
             node 2 { a := 0 }\n\
             node 3 { out(x) }\n\
             edge 1 -> 2\nedge 2 -> 3",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let u = PatternUniverse::collect(&g);
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let ab = u.expr_id(&Term::binary(BinOp::Add, a, b)).unwrap();
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        let sol = partially_available_expressions(&pg, &u);
        assert!(sol.before[pg.first_of(n2).index()].contains(ab));
        assert!(!sol.after[pg.last_of(n2).index()].contains(ab));
    }

    #[test]
    fn faint_chains_are_not_strongly_live() {
        // b := a is a classic live-variable use of a, but the chain ends
        // unobserved: nothing is strongly live.
        let g = parse(
            "start 1\nend 2\n\
             node 1 { a := 1; b := a }\n\
             node 2 { out() }\n\
             edge 1 -> 2",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let weak = live_variables(&pg);
        let strong = strongly_live_variables(&pg);
        let mid = pg.last_of(g.start()).index();
        // Classic liveness sees the read of a in `b := a`...
        assert!(weak.before[mid].contains(a.index()));
        // ...strong liveness does not: b is never observed.
        assert!(!strong.before[mid].contains(a.index()));
        assert!(!strong.after[mid].contains(b.index()));
    }

    #[test]
    fn observed_chains_stay_strongly_live() {
        let g = parse(
            "start 1\nend 2\n\
             node 1 { a := 1; b := a }\n\
             node 2 { out(b) }\n\
             edge 1 -> 2",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let strong = strongly_live_variables(&pg);
        assert!(strong.after[pg.first_of(g.start()).index()].contains(a.index()));
        assert!(strong.before[pg.first_of(g.end()).index()].contains(b.index()));
    }

    #[test]
    fn branch_uses_are_strongly_live() {
        let g = parse(
            "start 1\nend 4\n\
             node 1 { p := 1 }\n\
             node 2 { branch p > 0 }\n\
             node 3 { skip }\n\
             node 4 { out() }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 4",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let p = g.pool().lookup("p").unwrap();
        let strong = strongly_live_variables(&pg);
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        assert!(strong.before[pg.first_of(n2).index()].contains(p.index()));
        // p is assigned at the entry instruction, so not strongly live
        // before it — but the definition itself is strongly live (kept).
        assert!(strong.after[pg.entry().index()].contains(p.index()));
    }

    #[test]
    fn faint_self_update_cycle_is_not_self_justifying() {
        // i := i+1 in a loop, never observed: the least fixpoint must not
        // let the self-use keep i alive.
        let g = parse(
            "start 1\nend 4\n\
             node 1 { i := 0 }\n\
             node 2 { branch p > 0 }\n\
             node 3 { i := i+1 }\n\
             node 4 { out(p) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let i = g.pool().lookup("i").unwrap();
        let strong = strongly_live_variables(&pg);
        let weak = live_variables(&pg);
        // Classic liveness keeps i alive around the loop (the i+1 read);
        // faintness kills it everywhere.
        let n3 = g.nodes().find(|&n| g.label(n) == "3").unwrap();
        assert!(weak.before[pg.first_of(n3).index()].contains(i.index()));
        for point in pg.points() {
            assert!(
                !strong.before[point.index()].contains(i.index()),
                "i strongly live at {point:?}"
            );
        }
    }

    #[test]
    fn expression_in_condition_counts_as_computation() {
        let g = parse(
            "start 1\nend 3\n\
             node 1 { branch a+b > 0 }\n\
             node 2 { skip }\n\
             node 3 { out(a) }\n\
             edge 1 -> 2, 3\nedge 2 -> 3",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let u = PatternUniverse::collect(&g);
        assert_eq!(u.expr_count(), 1);
        let sol = available_expressions(&pg, &u);
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        assert!(sol.before[pg.first_of(n2).index()].contains(0));
    }
}
