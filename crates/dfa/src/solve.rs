//! The generic bit-vector fixed-point solver.
//!
//! Every analysis in the paper (Tables 1–3) is a *gen/kill* system over a
//! pattern universe: at each point, `out = gen ∪ (in ∖ kill)`, with `in`
//! combined over neighbours by either intersection (`∏`, must/all-paths) or
//! union (`Σ`, may/some-path). Must-systems are solved to their **greatest**
//! fixed point (initialize ⊤ and shrink), may-systems to their **least**
//! (initialize ⊥ and grow) — the directions in which those systems are
//! meaningful.
//!
//! The solver is granularity-agnostic: callers hand it predecessor and
//! successor adjacency over any point set — instruction-level points
//! ([`PointGraph`](crate::PointGraph), Tables 2–3) or whole blocks
//! (Table 1).

use am_bitset::BitSet;

/// Propagation direction of an analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow with control (e.g. redundancy, delayability).
    Forward,
    /// Facts flow against control (e.g. hoistability, usability).
    Backward,
}

/// How facts combine at control-flow merges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Confluence {
    /// `∏` — the fact must hold on all paths (intersection).
    Must,
    /// `Σ` — the fact holds on some path (union).
    May,
}

/// A gen/kill bit-vector data-flow problem.
///
/// `gen[p]` and `kill[p]` give the transfer function of point `p`:
/// `out = gen ∪ (in ∖ kill)`. `boundary` is the value at the points with no
/// upstream neighbour (the entry point for forward problems, the exit point
/// for backward ones) — `false` everywhere in all of the paper's systems.
pub struct Problem {
    /// Propagation direction.
    pub direction: Direction,
    /// Merge operator.
    pub confluence: Confluence,
    /// Universe size (bits per set).
    pub universe: usize,
    /// Per-point generated facts.
    pub gen: Vec<BitSet>,
    /// Per-point killed facts.
    pub kill: Vec<BitSet>,
    /// Value at boundary points.
    pub boundary: BitSet,
}

impl Problem {
    /// Creates a problem with empty gen/kill sets and a `false` boundary.
    pub fn new(
        direction: Direction,
        confluence: Confluence,
        points: usize,
        universe: usize,
    ) -> Self {
        Problem {
            direction,
            confluence,
            universe,
            gen: vec![BitSet::new(universe); points],
            kill: vec![BitSet::new(universe); points],
            boundary: BitSet::new(universe),
        }
    }
}

/// The fixed-point solution of a [`Problem`].
#[derive(Clone, Debug)]
pub struct Solution {
    /// Entry fact of each point (the paper's `N-…`).
    pub before: Vec<BitSet>,
    /// Exit fact of each point (the paper's `X-…`).
    pub after: Vec<BitSet>,
    /// Number of point updates performed until convergence — the iteration
    /// count reported by the complexity study.
    pub iterations: u64,
    /// Number of worklist pushes, including the initial seeding of every
    /// point. Since the solver runs until the worklist drains, this always
    /// equals [`iterations`](Self::iterations) for a single solve; the
    /// parallel solver reports the sum over its partitions.
    pub worklist_pushes: u64,
    /// Peak worklist length observed (≥ the point count, which seeds it).
    pub max_worklist_len: usize,
}

impl Solution {
    /// Entry fact of point `p` restricted to bit `bit`.
    pub fn before_bit(&self, p: usize, bit: usize) -> bool {
        self.before[p].contains(bit)
    }

    /// Exit fact of point `p` restricted to bit `bit`.
    pub fn after_bit(&self, p: usize, bit: usize) -> bool {
        self.after[p].contains(bit)
    }
}

/// Solves `problem` over the point set described by `succs`/`preds`.
///
/// Must-problems are initialized to ⊤ and shrink to the greatest fixed
/// point; may-problems start at ⊥ and grow to the least. A worklist over
/// the appropriate traversal order keeps the pass count low (linear for
/// acyclic graphs, proportional to loop nesting otherwise).
///
/// # Panics
///
/// Panics if the adjacency, gen and kill vectors disagree on the number of
/// points.
pub fn solve(succs: &[Vec<usize>], preds: &[Vec<usize>], problem: &Problem) -> Solution {
    let n = succs.len();
    assert_eq!(preds.len(), n, "preds/succs length mismatch");
    assert_eq!(problem.gen.len(), n, "gen length mismatch");
    assert_eq!(problem.kill.len(), n, "kill length mismatch");
    let universe = problem.universe;

    let top = match problem.confluence {
        Confluence::Must => BitSet::full(universe),
        Confluence::May => BitSet::new(universe),
    };
    // `input[p]` is the merged incoming fact, `output[p]` the transferred
    // one. For forward problems input = before/entry, output = after/exit;
    // for backward problems input = after/exit, output = before/entry.
    let mut input: Vec<BitSet> = vec![top.clone(); n];
    let mut output: Vec<BitSet> = vec![top; n];

    let (upstream, downstream) = match problem.direction {
        Direction::Forward => (preds, succs),
        Direction::Backward => (succs, preds),
    };

    let mut iterations: u64 = 0;
    let mut on_list = vec![true; n];
    let mut worklist: Vec<usize> = (0..n).collect();
    let mut worklist_pushes = n as u64;
    let mut max_worklist_len = n;
    let mut scratch = BitSet::new(universe);
    while let Some(p) = worklist.pop() {
        on_list[p] = false;
        iterations += 1;
        // Merge incoming facts.
        if upstream[p].is_empty() {
            scratch.copy_from(&problem.boundary);
        } else {
            match problem.confluence {
                Confluence::Must => {
                    scratch.insert_all();
                    for &q in &upstream[p] {
                        scratch.intersect_with(&output[q]);
                    }
                }
                Confluence::May => {
                    scratch.clear();
                    for &q in &upstream[p] {
                        scratch.union_with(&output[q]);
                    }
                }
            }
        }
        input[p].copy_from(&scratch);
        // Transfer: out = gen ∪ (in ∖ kill).
        scratch.difference_with(&problem.kill[p]);
        scratch.union_with(&problem.gen[p]);
        if output[p].copy_from(&scratch) {
            for &q in &downstream[p] {
                if !on_list[q] {
                    on_list[q] = true;
                    worklist.push(q);
                    worklist_pushes += 1;
                }
            }
            max_worklist_len = max_worklist_len.max(worklist.len());
        }
    }

    let (before, after) = match problem.direction {
        Direction::Forward => (input, output),
        Direction::Backward => (output, input),
    };
    Solution {
        before,
        after,
        iterations,
        worklist_pushes,
        max_worklist_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-point diamond: 0 -> {1,2} -> 3.
    fn diamond() -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        (succs, preds)
    }

    #[test]
    fn forward_must_intersects_at_joins() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 2);
        // Bit 0 generated on both branches, bit 1 only on the left.
        p.gen[1].insert(0);
        p.gen[1].insert(1);
        p.gen[2].insert(0);
        let sol = solve(&succs, &preds, &p);
        assert!(sol.before_bit(3, 0));
        assert!(!sol.before_bit(3, 1));
        assert!(!sol.before_bit(1, 0), "boundary is false");
    }

    #[test]
    fn forward_may_unions_at_joins() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::May, 4, 2);
        p.gen[1].insert(1);
        let sol = solve(&succs, &preds, &p);
        assert!(sol.before_bit(3, 1));
        assert!(!sol.before_bit(2, 1));
    }

    #[test]
    fn backward_must_with_kill() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Backward, Confluence::Must, 4, 1);
        // Fact generated at exit point 3, killed in branch 1.
        p.gen[3].insert(0);
        p.kill[1].insert(0);
        let sol = solve(&succs, &preds, &p);
        assert!(sol.before_bit(3, 0));
        // After point 1 the fact holds (incoming from 3), before it doesn't.
        assert!(sol.after_bit(1, 0));
        assert!(!sol.before_bit(1, 0));
        assert!(sol.before_bit(2, 0));
        // At node 0 the merge over {1,2} intersects: false.
        assert!(!sol.after_bit(0, 0));
    }

    #[test]
    fn greatest_solution_on_cycles() {
        // 0 -> 1 <-> 2, 1 -> 3. A must-fact that no point kills stays true
        // on the cycle only if it is true on every path into it; with a
        // false boundary it collapses to gen-reachability.
        let succs = vec![vec![1], vec![2, 3], vec![1], vec![]];
        let preds = vec![vec![], vec![0, 2], vec![1], vec![3]];
        // preds[3] should be [1]; typo guard below.
        let preds = {
            let mut p = preds;
            p[3] = vec![1];
            p
        };
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 1);
        p.gen[0].insert(0);
        let sol = solve(&succs, &preds, &p);
        // Generated at 0, never killed: holds everywhere downstream, even
        // around the cycle (greatest fixed point keeps it).
        assert!(sol.before_bit(1, 0));
        assert!(sol.before_bit(2, 0));
        assert!(sol.before_bit(3, 0));
    }

    #[test]
    fn least_solution_on_cycles_is_not_self_justifying() {
        // Backward may-analysis (like usability): a cycle with no uses must
        // not mark itself usable.
        let succs = vec![vec![1], vec![2, 3], vec![1], vec![]];
        let preds = vec![vec![], vec![0, 2], vec![1], vec![1]];
        let p = Problem::new(Direction::Backward, Confluence::May, 4, 1);
        let sol = solve(&succs, &preds, &p);
        for i in 0..4 {
            assert!(!sol.before_bit(i, 0));
            assert!(!sol.after_bit(i, 0));
        }
    }

    #[test]
    fn iteration_count_is_reported() {
        let (succs, preds) = diamond();
        let p = Problem::new(Direction::Forward, Confluence::Must, 4, 1);
        let sol = solve(&succs, &preds, &p);
        assert!(sol.iterations >= 4);
    }

    #[test]
    fn worklist_metrics_on_a_known_diamond() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 2);
        p.gen[0].insert(0);
        p.gen[1].insert(1);
        let sol = solve(&succs, &preds, &p);
        // Every pop was pushed and the solver runs until the list drains,
        // so pushes and iterations agree exactly.
        assert_eq!(sol.worklist_pushes, sol.iterations);
        // All four points seed the worklist, so the peak is at least that.
        assert!(sol.max_worklist_len >= 4, "{}", sol.max_worklist_len);
        // Seeding LIFO order pops 3,2,1,0; each update re-enqueues its
        // downstream point(s): 0 pushes {1,2}, 1 and 2 each push 3.
        // 4 seeds + at most 4 re-pushes for this acyclic graph.
        assert!(sol.worklist_pushes >= 4 && sol.worklist_pushes <= 8);
    }

    #[test]
    fn parallel_solve_sums_pushes_and_maxes_worklist_len() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 8);
        for bit in 0..8 {
            p.gen[0].insert(bit);
        }
        let seq = solve(&succs, &preds, &p);
        let par = solve_parallel(&succs, &preds, &p, 4);
        // Each of the 4 partitions seeds all 4 points.
        assert!(par.worklist_pushes >= 16);
        assert!(par.worklist_pushes >= seq.worklist_pushes);
        assert!(par.max_worklist_len >= 4);
        assert_eq!(par.before, seq.before);
    }

    #[test]
    #[should_panic(expected = "gen length mismatch")]
    fn length_mismatch_panics() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 3, 1);
        p.boundary = BitSet::new(1);
        solve(&succs, &preds, &p);
    }
}

/// Restriction of a problem to a contiguous bit range (used by the
/// parallel solver — gen/kill systems are independent per bit).
fn restrict(problem: &Problem, range: std::ops::Range<usize>) -> Problem {
    let width = range.len();
    let shrink = |set: &BitSet| {
        let mut out = BitSet::new(width);
        for b in set.iter() {
            if range.contains(&b) {
                out.insert(b - range.start);
            }
        }
        out
    };
    Problem {
        direction: problem.direction,
        confluence: problem.confluence,
        universe: width,
        gen: problem.gen.iter().map(&shrink).collect(),
        kill: problem.kill.iter().map(&shrink).collect(),
        boundary: shrink(&problem.boundary),
    }
}

/// Solves `problem` with the bit universe partitioned across `threads`
/// worker threads.
///
/// A gen/kill system is a product of independent one-bit systems, so the
/// universe can be chunked and solved concurrently; the merged solution is
/// identical to [`solve`]'s. Worth it for programs with many patterns;
/// for small universes the sequential solver wins.
///
/// # Panics
///
/// Panics under the same conditions as [`solve`], and if `threads == 0`.
pub fn solve_parallel(
    succs: &[Vec<usize>],
    preds: &[Vec<usize>],
    problem: &Problem,
    threads: usize,
) -> Solution {
    assert!(threads > 0, "at least one thread required");
    let universe = problem.universe;
    if threads == 1 || universe < 2 * threads {
        return solve(succs, preds, problem);
    }
    let chunk = universe.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(universe)..((t + 1) * chunk).min(universe))
        .filter(|r| !r.is_empty())
        .collect();
    let partials: Vec<(std::ops::Range<usize>, Solution)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let range = range.clone();
                scope.spawn(move || {
                    let sub = restrict(problem, range.clone());
                    (range, solve(succs, preds, &sub))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver thread"))
            .collect()
    });
    // Merge.
    let points = succs.len();
    let mut before = vec![BitSet::new(universe); points];
    let mut after = vec![BitSet::new(universe); points];
    let mut iterations = 0;
    let mut worklist_pushes = 0;
    let mut max_worklist_len = 0;
    for (range, sol) in partials {
        iterations += sol.iterations;
        worklist_pushes += sol.worklist_pushes;
        max_worklist_len = max_worklist_len.max(sol.max_worklist_len);
        for p in 0..points {
            for b in sol.before[p].iter() {
                before[p].insert(b + range.start);
            }
            for b in sol.after[p].iter() {
                after[p].insert(b + range.start);
            }
        }
    }
    Solution {
        before,
        after,
        iterations,
        worklist_pushes,
        max_worklist_len,
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    fn random_setup(
        seed: u64,
        points: usize,
        universe: usize,
    ) -> (Vec<Vec<usize>>, Vec<Vec<usize>>, Problem) {
        // Deterministic pseudo-random structure without external deps.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut succs = vec![Vec::new(); points];
        let mut preds = vec![Vec::new(); points];
        for i in 0..points - 1 {
            succs[i].push(i + 1);
            preds[i + 1].push(i);
        }
        for _ in 0..points {
            let a = (next() as usize) % points;
            let b = (next() as usize) % points;
            if a != b && !succs[a].contains(&b) {
                succs[a].push(b);
                preds[b].push(a);
            }
        }
        let mut p = Problem::new(Direction::Forward, Confluence::Must, points, universe);
        for _ in 0..universe * 2 {
            p.gen[(next() as usize) % points].insert((next() as usize) % universe);
            p.kill[(next() as usize) % points].insert((next() as usize) % universe);
        }
        (succs, preds, p)
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..8 {
            let (succs, preds, p) = random_setup(seed, 20, 70);
            let seq = solve(&succs, &preds, &p);
            for threads in [1, 2, 4, 7] {
                let par = solve_parallel(&succs, &preds, &p, threads);
                for point in 0..succs.len() {
                    assert_eq!(
                        par.before[point], seq.before[point],
                        "seed {seed} t {threads}"
                    );
                    assert_eq!(
                        par.after[point], seq.after[point],
                        "seed {seed} t {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_universes_fall_back_to_sequential() {
        let (succs, preds, p) = random_setup(3, 8, 3);
        let par = solve_parallel(&succs, &preds, &p, 8);
        let seq = solve(&succs, &preds, &p);
        assert_eq!(par.before, seq.before);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (succs, preds, p) = random_setup(1, 4, 4);
        solve_parallel(&succs, &preds, &p, 0);
    }
}
