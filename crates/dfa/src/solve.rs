//! The generic bit-vector fixed-point solver.
//!
//! Every analysis in the paper (Tables 1–3) is a *gen/kill* system over a
//! pattern universe: at each point, `out = gen ∪ (in ∖ kill)`, with `in`
//! combined over neighbours by either intersection (`∏`, must/all-paths) or
//! union (`Σ`, may/some-path). Must-systems are solved to their **greatest**
//! fixed point (initialize ⊤ and shrink), may-systems to their **least**
//! (initialize ⊥ and grow) — the directions in which those systems are
//! meaningful.
//!
//! The solver is granularity-agnostic: callers hand it predecessor and
//! successor adjacency over any point set — instruction-level points
//! ([`PointGraph`](crate::PointGraph), Tables 2–3) or whole blocks
//! (Table 1).
//!
//! # Scheduling
//!
//! Points are processed in priority order, not stack order: a [`Schedule`]
//! ranks every point in reverse postorder of the propagation direction
//! (RPO over successors for forward problems, RPO over predecessors —
//! i.e. post-order — for backward ones), and the worklist is a min-heap on
//! that rank with an "on worklist" bitmask so each point is queued at most
//! once at a time. On a reducible graph one heap drain visits points in
//! topological order modulo back edges, so the solver converges in a small
//! number of passes (Kam–Ullman priority iteration) instead of chasing a
//! LIFO stack around the graph.

use am_bitset::{ActiveWords, BitSet};

use crate::adjacency::Adjacency;

/// Propagation direction of an analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow with control (e.g. redundancy, delayability).
    Forward,
    /// Facts flow against control (e.g. hoistability, usability).
    Backward,
}

/// How facts combine at control-flow merges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Confluence {
    /// `∏` — the fact must hold on all paths (intersection).
    Must,
    /// `Σ` — the fact holds on some path (union).
    May,
}

/// A gen/kill bit-vector data-flow problem.
///
/// `gen[p]` and `kill[p]` give the transfer function of point `p`:
/// `out = gen ∪ (in ∖ kill)`. `boundary` is the value at the points with no
/// upstream neighbour (the entry point for forward problems, the exit point
/// for backward ones) — `false` everywhere in all of the paper's systems.
pub struct Problem {
    /// Propagation direction.
    pub direction: Direction,
    /// Merge operator.
    pub confluence: Confluence,
    /// Universe size (bits per set).
    pub universe: usize,
    /// Per-point generated facts.
    pub gen: Vec<BitSet>,
    /// Per-point killed facts.
    pub kill: Vec<BitSet>,
    /// Value at boundary points.
    pub boundary: BitSet,
}

impl Problem {
    /// Creates a problem with empty gen/kill sets and a `false` boundary.
    pub fn new(
        direction: Direction,
        confluence: Confluence,
        points: usize,
        universe: usize,
    ) -> Self {
        Problem {
            direction,
            confluence,
            universe,
            gen: vec![BitSet::new(universe); points],
            kill: vec![BitSet::new(universe); points],
            boundary: BitSet::new(universe),
        }
    }
}

/// One direction's processing order: a permutation of the points and its
/// inverse.
#[derive(Clone, Debug)]
struct Order {
    /// `rank[p]` — position of point `p` in the traversal.
    rank: Vec<u32>,
    /// `seq[r]` — the point at position `r` (inverse of `rank`).
    seq: Vec<u32>,
}

/// Direction-aware priority schedule of a point set.
///
/// Computed once per graph (e.g. cached on
/// [`PointGraph`](crate::PointGraph)) and shared by every solve over that
/// graph: the forward order is reverse postorder over successors, the
/// backward order reverse postorder over predecessors. Depth-first search
/// starts from the boundary points of the respective direction (no
/// upstream neighbour), then sweeps any remaining unvisited points in
/// index order, so unreachable regions still get deterministic ranks.
#[derive(Clone, Debug)]
pub struct Schedule {
    forward: Order,
    backward: Order,
}

impl Schedule {
    /// Builds the schedule for the point set described by `succs`/`preds`.
    ///
    /// # Panics
    ///
    /// Panics if `succs` and `preds` disagree on the number of points.
    pub fn build(succs: &Adjacency, preds: &Adjacency) -> Self {
        assert_eq!(preds.len(), succs.len(), "preds/succs length mismatch");
        Schedule {
            forward: reverse_postorder(succs, preds),
            backward: reverse_postorder(preds, succs),
        }
    }

    /// The number of points the schedule covers.
    pub fn len(&self) -> usize {
        self.forward.rank.len()
    }

    /// Whether the schedule covers no points.
    pub fn is_empty(&self) -> bool {
        self.forward.rank.is_empty()
    }

    /// Priority rank of point `p` for `direction` (lower runs earlier).
    pub fn rank(&self, direction: Direction, p: usize) -> u32 {
        self.order(direction).rank[p]
    }

    /// The point at position `rank` of `direction`'s traversal — the
    /// inverse of [`rank`](Self::rank), for callers running their own
    /// priority worklists over non-gen/kill transfer functions.
    pub fn point_at(&self, direction: Direction, rank: u32) -> usize {
        self.order(direction).seq[rank as usize] as usize
    }

    fn order(&self, direction: Direction) -> &Order {
        match direction {
            Direction::Forward => &self.forward,
            Direction::Backward => &self.backward,
        }
    }

    /// `direction`'s traversal sequence: `seq[r]` is the point at rank `r`.
    pub(crate) fn seq(&self, direction: Direction) -> &[u32] {
        &self.order(direction).seq
    }

    /// `direction`'s rank array: `ranks[p]` is the rank of point `p`.
    pub(crate) fn ranks(&self, direction: Direction) -> &[u32] {
        &self.order(direction).rank
    }
}

/// Reverse postorder over `adj`, with DFS roots chosen boundary-first:
/// points with no `adj_in` neighbour seed the search (in index order), any
/// point left unvisited afterwards roots its own tree.
fn reverse_postorder(adj: &Adjacency, adj_in: &Adjacency) -> Order {
    let n = adj.len();
    let mut post: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // (point, next child index) — an explicit stack keeps deep chains
    // (straight-line code is one point per instruction) off the call stack.
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let roots = (0..n).filter(|&p| adj_in[p].is_empty()).chain(0..n);
    for root in roots {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        stack.push((root, 0));
        while let Some(&mut (p, ref mut child)) = stack.last_mut() {
            if let Some(&q) = adj[p].get(*child) {
                *child += 1;
                let q = q as usize;
                if !visited[q] {
                    visited[q] = true;
                    stack.push((q, 0));
                }
            } else {
                post.push(p as u32);
                stack.pop();
            }
        }
    }
    post.reverse();
    let mut rank = vec![0u32; n];
    for (r, &p) in post.iter().enumerate() {
        rank[p as usize] = r as u32;
    }
    Order { rank, seq: post }
}

/// The fixed-point solution of a [`Problem`].
#[derive(Clone, Debug)]
pub struct Solution {
    /// Entry fact of each point (the paper's `N-…`).
    pub before: Vec<BitSet>,
    /// Exit fact of each point (the paper's `X-…`).
    pub after: Vec<BitSet>,
    /// Number of point updates performed until convergence — the iteration
    /// count reported by the complexity study.
    pub iterations: u64,
    /// Number of worklist pushes, including the initial seeding. Since the
    /// solver runs until the worklist drains, this always equals
    /// [`iterations`](Self::iterations) for a single solve; the parallel
    /// solver reports the sum over its partitions.
    pub worklist_pushes: u64,
    /// Peak worklist length observed. A cold solve seeds every point, so
    /// this is at least the point count; a warm-started solve
    /// ([`solve_seeded`]) seeds only the dirty points.
    pub max_worklist_len: usize,
}

impl Solution {
    /// Entry fact of point `p` restricted to bit `bit`.
    pub fn before_bit(&self, p: usize, bit: usize) -> bool {
        self.before[p].contains(bit)
    }

    /// Exit fact of point `p` restricted to bit `bit`.
    pub fn after_bit(&self, p: usize, bit: usize) -> bool {
        self.after[p].contains(bit)
    }
}

/// Solves `problem` over the point set described by `succs`/`preds`.
///
/// Must-problems are initialized to ⊤ and shrink to the greatest fixed
/// point; may-problems start at ⊥ and grow to the least. Builds a
/// [`Schedule`] for the graph and delegates to [`solve_scheduled`]; when
/// the same graph is solved repeatedly, build the schedule once and call
/// [`solve_scheduled`] directly.
///
/// # Panics
///
/// Panics if the adjacency, gen and kill vectors disagree on the number of
/// points.
pub fn solve(succs: &Adjacency, preds: &Adjacency, problem: &Problem) -> Solution {
    check_lengths(succs, preds, problem);
    let schedule = Schedule::build(succs, preds);
    solve_scheduled(succs, preds, problem, &schedule)
}

fn check_lengths(succs: &Adjacency, preds: &Adjacency, problem: &Problem) {
    let n = succs.len();
    assert_eq!(preds.len(), n, "preds/succs length mismatch");
    assert_eq!(problem.gen.len(), n, "gen length mismatch");
    assert_eq!(problem.kill.len(), n, "kill length mismatch");
}

/// Solves `problem` using a precomputed [`Schedule`], seeding every point.
///
/// # Panics
///
/// Panics under the same conditions as [`solve`], and if the schedule
/// covers a different number of points.
pub fn solve_scheduled(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    schedule: &Schedule,
) -> Solution {
    solve_scheduled_reusing(succs, preds, problem, schedule, None)
}

/// As [`solve_scheduled`], recycling the fact buffers of a [`Solution`]
/// from an earlier solve instead of allocating fresh ones.
///
/// Every fact row is reinitialized to the problem's start value, so the
/// result is identical to [`solve_scheduled`]'s — only the allocations are
/// reused. Rows of the wrong width (the universe changed) or count (the
/// point set changed) are rebuilt as needed. This matters to callers that
/// solve once per round over 10⁴–10⁵ points: without recycling, each round
/// allocates and frees two full fact tables.
pub fn solve_scheduled_reusing(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    schedule: &Schedule,
    recycled: Option<Solution>,
) -> Solution {
    check_lengths(succs, preds, problem);
    let n = succs.len();
    let top = match problem.confluence {
        Confluence::Must => BitSet::full(problem.universe),
        Confluence::May => BitSet::new(problem.universe),
    };
    let (mut input, mut output) = match recycled {
        Some(sol) => (sol.before, sol.after),
        None => (Vec::new(), Vec::new()),
    };
    reset_rows(&mut input, n, &top);
    reset_rows(&mut output, n, &top);
    let seed: Vec<usize> = (0..n).collect();
    run(succs, preds, problem, schedule, input, output, &seed)
}

/// Reinitializes `rows` to `n` copies of `value`, reusing allocations
/// where the width already matches.
fn reset_rows(rows: &mut Vec<BitSet>, n: usize, value: &BitSet) {
    if rows.first().is_some_and(|r| r.len() != value.len()) {
        rows.clear();
    }
    rows.truncate(n);
    for row in rows.iter_mut() {
        row.copy_from(value);
    }
    while rows.len() < n {
        rows.push(value.clone());
    }
}

/// Continues a previous solve after a localized change to the problem.
///
/// `warm` is the previous [`Solution`] of a problem over the same graph;
/// `dirty` lists every point whose gen/kill row changed since then. The
/// solver restarts chaotic iteration from the warm facts with only the
/// dirty points seeded, and converges to the same fixed point a cold
/// [`solve`] of the new problem would, **provided the change moved the
/// transfer functions in the problem's safe direction**:
///
/// * **Must** (greatest fixed point): the warm facts must be ≥ the new
///   fixed point, which holds when rows only *lowered* — gen bits removed
///   and/or kill bits added. Any fixed point above the greatest one does
///   not exist, so descending iteration from above lands exactly on it.
/// * **May** (least fixed point): dually, rows may only *raise* — gen bits
///   added and/or kill bits removed — keeping the warm facts ≤ the new
///   fixed point.
///
/// Changes in the unsafe direction (e.g. a must-problem whose kill bits
/// disappeared) can converge to a stale inner fixed point; callers must
/// fall back to a cold solve in that case. The returned metrics count only
/// the incremental work: `worklist_pushes` starts at `dirty.len()`.
///
/// # Panics
///
/// Panics under the same conditions as [`solve_scheduled`], and if `warm`
/// covers a different number of points.
pub fn solve_seeded(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    schedule: &Schedule,
    warm: &Solution,
    dirty: &[usize],
) -> Solution {
    solve_seeded_reusing(succs, preds, problem, schedule, warm, dirty, None)
}

/// As [`solve_seeded`], recycling the fact buffers of a detached
/// [`Solution`] (see [`solve_scheduled_reusing`]) for the working copy of
/// the warm facts.
#[allow(clippy::too_many_arguments)]
pub fn solve_seeded_reusing(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    schedule: &Schedule,
    warm: &Solution,
    dirty: &[usize],
    recycled: Option<Solution>,
) -> Solution {
    check_lengths(succs, preds, problem);
    let n = succs.len();
    assert_eq!(warm.before.len(), n, "warm solution length mismatch");
    // Undo the direction normalization: `input` is the merged incoming
    // fact (entry for forward, exit for backward), `output` the
    // transferred one.
    let (src_in, src_out) = match problem.direction {
        Direction::Forward => (&warm.before, &warm.after),
        Direction::Backward => (&warm.after, &warm.before),
    };
    let (mut input, mut output) = match recycled {
        Some(sol) => (sol.before, sol.after),
        None => (Vec::new(), Vec::new()),
    };
    copy_rows(&mut input, src_in);
    copy_rows(&mut output, src_out);
    run(succs, preds, problem, schedule, input, output, dirty)
}

/// Makes `rows` a row-for-row copy of `src`, reusing allocations where the
/// width already matches.
fn copy_rows(rows: &mut Vec<BitSet>, src: &[BitSet]) {
    if rows.first().map(BitSet::len) != src.first().map(BitSet::len) {
        rows.clear();
    }
    rows.truncate(src.len());
    for (row, s) in rows.iter_mut().zip(src) {
        row.copy_from(s);
    }
    for s in &src[rows.len().min(src.len())..] {
        rows.push(s.clone());
    }
}

/// Word-parallel priority worklist over schedule ranks.
///
/// A schedule assigns every point a *unique* rank, so the pending set is a
/// bitmap over ranks and pop-min is a forward scan for the first set bit —
/// one `trailing_zeros` per pop plus a word walk that a cursor keeps
/// amortized: the cursor only moves backward when a push lands below it
/// (a retreating edge fired). This visits points in exactly the order a
/// min-heap on ranks would, at a fraction of the constant cost — no
/// sift-up/down, no per-element branching — which matters when a cold
/// solve seeds all 10⁵ points of an XL graph.
struct RankQueue {
    words: Vec<u64>,
    len: usize,
    /// No set bit lies below this rank.
    cur: usize,
}

impl RankQueue {
    fn new(n: usize) -> Self {
        RankQueue {
            words: vec![0; n.div_ceil(64)],
            len: 0,
            cur: n,
        }
    }

    /// Inserts `rank`. The caller guarantees it is not already pending
    /// (the solver's `on_list` mask dedupes points).
    fn push(&mut self, rank: u32) {
        let r = rank as usize;
        self.words[r / 64] |= 1u64 << (r % 64);
        self.len += 1;
        self.cur = self.cur.min(r);
    }

    /// Removes and returns the smallest pending rank.
    fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mut w = self.cur / 64;
        let mut word = self.words[w] & (!0u64 << (self.cur % 64));
        while word == 0 {
            w += 1;
            word = self.words[w];
        }
        let bit = word.trailing_zeros() as usize;
        let r = w * 64 + bit;
        self.words[w] &= !(1u64 << bit);
        self.len -= 1;
        self.cur = r + 1;
        Some(r as u32)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// The priority worklist loop shared by cold and warm solves.
fn run(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    schedule: &Schedule,
    mut input: Vec<BitSet>,
    mut output: Vec<BitSet>,
    seed: &[usize],
) -> Solution {
    let n = succs.len();
    assert_eq!(schedule.len(), n, "schedule length mismatch");
    let (upstream, downstream) = match problem.direction {
        Direction::Forward => (preds, succs),
        Direction::Backward => (succs, preds),
    };
    let order = schedule.order(problem.direction);

    let mut iterations: u64 = 0;
    let mut worklist_pushes: u64 = 0;
    let mut on_list = vec![false; n];
    let mut queue = RankQueue::new(n);
    for &p in seed {
        if !on_list[p] {
            on_list[p] = true;
            queue.push(order.rank[p]);
            worklist_pushes += 1;
        }
    }
    let mut max_worklist_len = queue.len();
    // Dirty-word indices of the gen/kill rows, built lazily on first visit
    // so warm restarts with small dirty sets never scan the whole problem.
    let mut rows: Vec<Option<ActiveWords>> = vec![None; n];
    while let Some(rank) = queue.pop() {
        let p = order.seq[rank as usize] as usize;
        on_list[p] = false;
        iterations += 1;
        // Merge incoming facts directly into the stored entry fact: copy
        // the first upstream row, then fold the rest in place. This
        // replaces the old ⊤-reset + intersect-everything merge and the
        // scratch-to-input copy with a single write pass per upstream.
        if upstream[p].is_empty() {
            input[p].copy_from(&problem.boundary);
        } else {
            let (&first, rest) = upstream[p].split_first().expect("non-empty");
            input[p].copy_from(&output[first as usize]);
            match problem.confluence {
                Confluence::Must => {
                    for &q in rest {
                        input[p].intersect_with(&output[q as usize]);
                    }
                }
                Confluence::May => {
                    for &q in rest {
                        input[p].union_with(&output[q as usize]);
                    }
                }
            }
        }
        // Fused transfer: out = gen ∪ (in ∖ kill) in one word pass, with
        // the same exact change bit the three-pass formulation computed.
        let row =
            rows[p].get_or_insert_with(|| ActiveWords::build(&problem.gen[p], &problem.kill[p]));
        if output[p].transfer_from(&input[p], &problem.gen[p], &problem.kill[p], row) {
            for &q in &downstream[p] {
                let q = q as usize;
                if !on_list[q] {
                    on_list[q] = true;
                    queue.push(order.rank[q]);
                    worklist_pushes += 1;
                }
            }
            max_worklist_len = max_worklist_len.max(queue.len());
        }
    }

    let (before, after) = match problem.direction {
        Direction::Forward => (input, output),
        Direction::Backward => (output, input),
    };
    Solution {
        before,
        after,
        iterations,
        worklist_pushes,
        max_worklist_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-point diamond: 0 -> {1,2} -> 3.
    fn diamond() -> (Adjacency, Adjacency) {
        let succs = Adjacency::from_lists(&[vec![1, 2], vec![3], vec![3], vec![]]);
        let preds = Adjacency::from_lists(&[vec![], vec![0], vec![0], vec![1, 2]]);
        (succs, preds)
    }

    #[test]
    fn forward_must_intersects_at_joins() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 2);
        // Bit 0 generated on both branches, bit 1 only on the left.
        p.gen[1].insert(0);
        p.gen[1].insert(1);
        p.gen[2].insert(0);
        let sol = solve(&succs, &preds, &p);
        assert!(sol.before_bit(3, 0));
        assert!(!sol.before_bit(3, 1));
        assert!(!sol.before_bit(1, 0), "boundary is false");
    }

    #[test]
    fn forward_may_unions_at_joins() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::May, 4, 2);
        p.gen[1].insert(1);
        let sol = solve(&succs, &preds, &p);
        assert!(sol.before_bit(3, 1));
        assert!(!sol.before_bit(2, 1));
    }

    #[test]
    fn backward_must_with_kill() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Backward, Confluence::Must, 4, 1);
        // Fact generated at exit point 3, killed in branch 1.
        p.gen[3].insert(0);
        p.kill[1].insert(0);
        let sol = solve(&succs, &preds, &p);
        assert!(sol.before_bit(3, 0));
        // After point 1 the fact holds (incoming from 3), before it doesn't.
        assert!(sol.after_bit(1, 0));
        assert!(!sol.before_bit(1, 0));
        assert!(sol.before_bit(2, 0));
        // At node 0 the merge over {1,2} intersects: false.
        assert!(!sol.after_bit(0, 0));
    }

    #[test]
    fn greatest_solution_on_cycles() {
        // 0 -> 1 <-> 2, 1 -> 3. A must-fact that no point kills stays true
        // on the cycle only if it is true on every path into it; with a
        // false boundary it collapses to gen-reachability.
        let succs = Adjacency::from_lists(&[vec![1], vec![2, 3], vec![1], vec![]]);
        let preds = Adjacency::from_lists(&[vec![], vec![0, 2], vec![1], vec![1]]);
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 1);
        p.gen[0].insert(0);
        let sol = solve(&succs, &preds, &p);
        // Generated at 0, never killed: holds everywhere downstream, even
        // around the cycle (greatest fixed point keeps it).
        assert!(sol.before_bit(1, 0));
        assert!(sol.before_bit(2, 0));
        assert!(sol.before_bit(3, 0));
    }

    #[test]
    fn least_solution_on_cycles_is_not_self_justifying() {
        // Backward may-analysis (like usability): a cycle with no uses must
        // not mark itself usable.
        let succs = Adjacency::from_lists(&[vec![1], vec![2, 3], vec![1], vec![]]);
        let preds = Adjacency::from_lists(&[vec![], vec![0, 2], vec![1], vec![1]]);
        let p = Problem::new(Direction::Backward, Confluence::May, 4, 1);
        let sol = solve(&succs, &preds, &p);
        for i in 0..4 {
            assert!(!sol.before_bit(i, 0));
            assert!(!sol.after_bit(i, 0));
        }
    }

    #[test]
    fn iteration_count_is_reported() {
        let (succs, preds) = diamond();
        let p = Problem::new(Direction::Forward, Confluence::Must, 4, 1);
        let sol = solve(&succs, &preds, &p);
        assert!(sol.iterations >= 4);
    }

    #[test]
    fn worklist_metrics_on_a_known_diamond() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 2);
        p.gen[0].insert(0);
        p.gen[1].insert(1);
        let sol = solve(&succs, &preds, &p);
        // Every pop was pushed and the solver runs until the list drains,
        // so pushes and iterations agree exactly.
        assert_eq!(sol.worklist_pushes, sol.iterations);
        // All four points seed the worklist, so the peak is at least that.
        assert!(sol.max_worklist_len >= 4, "{}", sol.max_worklist_len);
        // RPO pops 0 before both branches and both branches before the
        // join, so every downstream point is still seeded when its
        // upstream fact changes: no re-pushes at all on an acyclic graph.
        assert!(sol.worklist_pushes >= 4 && sol.worklist_pushes <= 8);
    }

    #[test]
    fn rpo_converges_in_one_pass_on_the_diamond() {
        // Regression for the old arbitrary-order seeding: the LIFO stack
        // popped the join first and re-processed it after each branch,
        // spending 7 updates on this graph. Priority order does exactly
        // one update per point.
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 2);
        p.gen[0].insert(0);
        p.gen[1].insert(1);
        let sol = solve(&succs, &preds, &p);
        assert_eq!(sol.iterations, 4, "one update per point in RPO");
        assert_eq!(sol.worklist_pushes, 4, "no re-pushes on an acyclic graph");

        // Same property for a backward problem: post-order pops the join
        // side first.
        let mut p = Problem::new(Direction::Backward, Confluence::Must, 4, 2);
        p.gen[3].insert(0);
        let sol = solve(&succs, &preds, &p);
        assert_eq!(sol.iterations, 4);
    }

    #[test]
    fn schedule_ranks_are_direction_aware() {
        let (succs, preds) = diamond();
        let s = Schedule::build(&succs, &preds);
        assert_eq!(s.len(), 4);
        // Forward: entry first, join last.
        assert_eq!(s.rank(Direction::Forward, 0), 0);
        assert_eq!(s.rank(Direction::Forward, 3), 3);
        // Backward: exit first, entry last.
        assert_eq!(s.rank(Direction::Backward, 3), 0);
        assert_eq!(s.rank(Direction::Backward, 0), 3);
    }

    #[test]
    fn seeded_resolve_from_converged_state_is_a_fixed_point() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 2);
        p.gen[0].insert(0);
        p.gen[1].insert(1);
        let schedule = Schedule::build(&succs, &preds);
        let cold = solve(&succs, &preds, &p);
        // Re-seeding everything over an unchanged problem: one sweep, no
        // changes, identical facts.
        let warm = solve_seeded(&succs, &preds, &p, &schedule, &cold, &[0, 1, 2, 3]);
        assert_eq!(warm.before, cold.before);
        assert_eq!(warm.after, cold.after);
        assert_eq!(warm.iterations, 4);
        // An empty dirty set does no work at all.
        let idle = solve_seeded(&succs, &preds, &p, &schedule, &cold, &[]);
        assert_eq!(idle.before, cold.before);
        assert_eq!(idle.iterations, 0);
        assert_eq!(idle.worklist_pushes, 0);
    }

    #[test]
    fn seeded_resolve_tracks_a_lowering_must_change() {
        // Cyclic graph: 0 -> 1 <-> 2 -> 3 (via 1). Lower point 1's row
        // (remove a gen bit, add a kill bit) and re-solve warm from the old
        // facts: must-facts only shrink, so the warm run lands on the same
        // greatest fixed point as a cold solve of the new problem.
        let succs = Adjacency::from_lists(&[vec![1], vec![2, 3], vec![1], vec![]]);
        let preds = Adjacency::from_lists(&[vec![], vec![0, 2], vec![1], vec![1]]);
        let schedule = Schedule::build(&succs, &preds);
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 3);
        p.gen[0].insert(0);
        p.gen[0].insert(1);
        p.gen[1].insert(2);
        let old = solve(&succs, &preds, &p);
        p.gen[1].remove(2);
        p.kill[1].insert(0);
        let cold = solve(&succs, &preds, &p);
        let warm = solve_seeded(&succs, &preds, &p, &schedule, &old, &[1]);
        assert_eq!(warm.before, cold.before);
        assert_eq!(warm.after, cold.after);
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn seeded_resolve_tracks_a_raising_may_change() {
        let succs = Adjacency::from_lists(&[vec![1], vec![2, 3], vec![1], vec![]]);
        let preds = Adjacency::from_lists(&[vec![], vec![0, 2], vec![1], vec![1]]);
        let schedule = Schedule::build(&succs, &preds);
        let mut p = Problem::new(Direction::Backward, Confluence::May, 4, 2);
        p.gen[3].insert(0);
        let old = solve(&succs, &preds, &p);
        // Raise point 2's row: new gen bit, kill bit dropped.
        p.gen[2].insert(1);
        let cold = solve(&succs, &preds, &p);
        let warm = solve_seeded(&succs, &preds, &p, &schedule, &old, &[2]);
        assert_eq!(warm.before, cold.before);
        assert_eq!(warm.after, cold.after);
    }

    #[test]
    fn parallel_solve_sums_pushes_and_maxes_worklist_len() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 4, 8);
        for bit in 0..8 {
            p.gen[0].insert(bit);
        }
        let seq = solve(&succs, &preds, &p);
        let par = solve_parallel(&succs, &preds, &p, 4);
        // Each of the 4 partitions seeds all 4 points.
        assert!(par.worklist_pushes >= 16);
        assert!(par.worklist_pushes >= seq.worklist_pushes);
        assert!(par.max_worklist_len >= 4);
        assert_eq!(par.before, seq.before);
    }

    #[test]
    #[should_panic(expected = "gen length mismatch")]
    fn length_mismatch_panics() {
        let (succs, preds) = diamond();
        let mut p = Problem::new(Direction::Forward, Confluence::Must, 3, 1);
        p.boundary = BitSet::new(1);
        solve(&succs, &preds, &p);
    }
}

/// Restriction of a problem to a contiguous bit range (used by the
/// parallel solver — gen/kill systems are independent per bit).
fn restrict(problem: &Problem, range: std::ops::Range<usize>) -> Problem {
    let width = range.len();
    let shrink = |set: &BitSet| {
        let mut out = BitSet::new(width);
        for b in set.iter() {
            if range.contains(&b) {
                out.insert(b - range.start);
            }
        }
        out
    };
    Problem {
        direction: problem.direction,
        confluence: problem.confluence,
        universe: width,
        gen: problem.gen.iter().map(&shrink).collect(),
        kill: problem.kill.iter().map(&shrink).collect(),
        boundary: shrink(&problem.boundary),
    }
}

/// Solves `problem` with the bit universe partitioned across `threads`
/// worker threads.
///
/// A gen/kill system is a product of independent one-bit systems, so the
/// universe can be chunked and solved concurrently; the merged solution is
/// identical to [`solve`]'s. The schedule is built once and shared by all
/// partitions. Worth it for programs with many patterns; for small
/// universes the sequential solver wins.
///
/// # Panics
///
/// Panics under the same conditions as [`solve`], and if `threads == 0`.
pub fn solve_parallel(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    threads: usize,
) -> Solution {
    assert!(threads > 0, "at least one thread required");
    let universe = problem.universe;
    if threads == 1 || universe < 2 * threads {
        return solve(succs, preds, problem);
    }
    check_lengths(succs, preds, problem);
    let schedule = Schedule::build(succs, preds);
    let chunk = universe.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(universe)..((t + 1) * chunk).min(universe))
        .filter(|r| !r.is_empty())
        .collect();
    let partials: Vec<(std::ops::Range<usize>, Solution)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let range = range.clone();
                let schedule = &schedule;
                scope.spawn(move || {
                    let sub = restrict(problem, range.clone());
                    (range, solve_scheduled(succs, preds, &sub, schedule))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver thread"))
            .collect()
    });
    // Merge.
    let points = succs.len();
    let mut before = vec![BitSet::new(universe); points];
    let mut after = vec![BitSet::new(universe); points];
    let mut iterations = 0;
    let mut worklist_pushes = 0;
    let mut max_worklist_len = 0;
    for (range, sol) in partials {
        iterations += sol.iterations;
        worklist_pushes += sol.worklist_pushes;
        max_worklist_len = max_worklist_len.max(sol.max_worklist_len);
        for p in 0..points {
            for b in sol.before[p].iter() {
                before[p].insert(b + range.start);
            }
            for b in sol.after[p].iter() {
                after[p].insert(b + range.start);
            }
        }
    }
    Solution {
        before,
        after,
        iterations,
        worklist_pushes,
        max_worklist_len,
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    fn random_setup(seed: u64, points: usize, universe: usize) -> (Adjacency, Adjacency, Problem) {
        // Deterministic pseudo-random structure without external deps.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut succs = vec![Vec::new(); points];
        let mut preds = vec![Vec::new(); points];
        for i in 0..points - 1 {
            succs[i].push(i + 1);
            preds[i + 1].push(i);
        }
        for _ in 0..points {
            let a = (next() as usize) % points;
            let b = (next() as usize) % points;
            if a != b && !succs[a].contains(&b) {
                succs[a].push(b);
                preds[b].push(a);
            }
        }
        let mut p = Problem::new(Direction::Forward, Confluence::Must, points, universe);
        for _ in 0..universe * 2 {
            p.gen[(next() as usize) % points].insert((next() as usize) % universe);
            p.kill[(next() as usize) % points].insert((next() as usize) % universe);
        }
        (
            Adjacency::from_lists(&succs),
            Adjacency::from_lists(&preds),
            p,
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..8 {
            let (succs, preds, p) = random_setup(seed, 20, 70);
            let seq = solve(&succs, &preds, &p);
            for threads in [1, 2, 4, 7] {
                let par = solve_parallel(&succs, &preds, &p, threads);
                for point in 0..succs.len() {
                    assert_eq!(
                        par.before[point], seq.before[point],
                        "seed {seed} t {threads}"
                    );
                    assert_eq!(
                        par.after[point], seq.after[point],
                        "seed {seed} t {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_universes_fall_back_to_sequential() {
        let (succs, preds, p) = random_setup(3, 8, 3);
        let par = solve_parallel(&succs, &preds, &p, 8);
        let seq = solve(&succs, &preds, &p);
        assert_eq!(par.before, seq.before);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (succs, preds, p) = random_setup(1, 4, 4);
        solve_parallel(&succs, &preds, &p, 0);
    }
}
