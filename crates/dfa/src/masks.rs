//! Word-level gen/kill row kernels.
//!
//! The naive way to build a gen/kill problem is a per-point × per-pattern
//! loop asking "does this instruction generate/kill this pattern?" —
//! `O(points · patterns)` predicate calls. But every local predicate of
//! Tables 1–3 depends on the instruction only through its *defined
//! variable* and its *used variables*: "kills pattern α" means "defines
//! α's left-hand side or an operand of α's right-hand side". So the
//! pattern sets can be indexed by variable once per universe, and each
//! instruction's row becomes a constant number of whole-bitset unions —
//! `O(points · words)` with the `am-bitset` word kernels doing the wide
//! work.
//!
//! [`PatternMasks`] holds those per-variable indexes plus the two
//! universe-wide masks (self-referential and trivial assignment patterns)
//! the analyses need. Build once per universe, reuse across every solve —
//! the assignment-motion loop caches it for all rounds.

use am_bitset::BitSet;
use am_ir::{PatternUniverse, Term, Var};

/// Per-variable pattern indexes over a [`PatternUniverse`].
///
/// All sets over assignment patterns use the universe's assignment-pattern
/// bit numbering, sets over expression patterns its expression numbering.
pub struct PatternMasks {
    /// `assign_lhs[v]` — assignment patterns whose left-hand side is `v`.
    assign_lhs: Vec<BitSet>,
    /// `assign_mentions[v]` — assignment patterns whose right-hand side
    /// mentions `v`.
    assign_mentions: Vec<BitSet>,
    /// `expr_mentions[v]` — expression patterns mentioning `v`.
    expr_mentions: Vec<BitSet>,
    /// Assignment patterns with their left-hand side among their operands
    /// (`x := x+1`), excluded from redundancy/hoisting universes.
    self_referential: BitSet,
    /// Assignment patterns with a trivial (operand) right-hand side.
    trivial_assigns: BitSet,
    /// Empty fallbacks for variables outside the indexed pool prefix.
    empty_assign: BitSet,
    empty_expr: BitSet,
}

impl PatternMasks {
    /// Indexes `universe` for a variable pool of size `vars`.
    ///
    /// Variables created after the build (their index ≥ `vars`) resolve to
    /// empty masks — correct, since they cannot appear in any pattern of
    /// the universe.
    pub fn build(universe: &PatternUniverse, vars: usize) -> Self {
        let ap = universe.assign_count();
        let ep = universe.expr_count();
        let mut masks = PatternMasks {
            assign_lhs: vec![BitSet::new(ap); vars],
            assign_mentions: vec![BitSet::new(ap); vars],
            expr_mentions: vec![BitSet::new(ep); vars],
            self_referential: BitSet::new(ap),
            trivial_assigns: BitSet::new(ap),
            empty_assign: BitSet::new(ap),
            empty_expr: BitSet::new(ep),
        };
        for (i, pat) in universe.assign_patterns() {
            if let Some(row) = masks.assign_lhs.get_mut(pat.lhs.index()) {
                row.insert(i);
            }
            pat.rhs.for_each_var(|v| {
                if let Some(row) = masks.assign_mentions.get_mut(v.index()) {
                    row.insert(i);
                }
            });
            if pat.is_self_referential() {
                masks.self_referential.insert(i);
            }
            if matches!(pat.rhs, Term::Operand(_)) {
                masks.trivial_assigns.insert(i);
            }
        }
        for (i, t) in universe.expr_patterns() {
            t.for_each_var(|v| {
                if let Some(row) = masks.expr_mentions.get_mut(v.index()) {
                    row.insert(i);
                }
            });
        }
        masks
    }

    /// Assignment patterns with left-hand side `v`.
    pub fn assign_lhs(&self, v: Var) -> &BitSet {
        self.assign_lhs.get(v.index()).unwrap_or(&self.empty_assign)
    }

    /// Assignment patterns whose right-hand side mentions `v`.
    pub fn assign_mentions(&self, v: Var) -> &BitSet {
        self.assign_mentions
            .get(v.index())
            .unwrap_or(&self.empty_assign)
    }

    /// Expression patterns mentioning `v`.
    pub fn expr_mentions(&self, v: Var) -> &BitSet {
        self.expr_mentions
            .get(v.index())
            .unwrap_or(&self.empty_expr)
    }

    /// Self-referential assignment patterns.
    pub fn self_referential(&self) -> &BitSet {
        &self.self_referential
    }

    /// Trivial (copy/constant) assignment patterns.
    pub fn trivial_assigns(&self) -> &BitSet {
        &self.trivial_assigns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::parse;
    use am_ir::AssignPattern;

    #[test]
    fn masks_agree_with_the_predicates() {
        let g = parse(
            "start 1\nend 2\n\
             node 1 { x := a+b; y := x; i := i+1 }\n\
             node 2 { out(x,y,i) }\n\
             edge 1 -> 2",
        )
        .unwrap();
        let universe = PatternUniverse::collect(&g);
        let masks = PatternMasks::build(&universe, g.pool().len());
        for v in g.pool().iter() {
            for (i, pat) in universe.assign_patterns() {
                assert_eq!(masks.assign_lhs(v).contains(i), pat.lhs == v);
                assert_eq!(masks.assign_mentions(v).contains(i), pat.rhs.mentions(v));
            }
            for (i, t) in universe.expr_patterns() {
                assert_eq!(masks.expr_mentions(v).contains(i), t.mentions(v));
            }
        }
        for (i, pat) in universe.assign_patterns() {
            assert_eq!(
                masks.self_referential().contains(i),
                pat.is_self_referential()
            );
            assert_eq!(
                masks.trivial_assigns().contains(i),
                matches!(pat.rhs, Term::Operand(_))
            );
        }
        let x = g.pool().lookup("x").unwrap();
        let y = g.pool().lookup("y").unwrap();
        let copy = universe
            .assign_id(&AssignPattern::new(y, Term::operand(x)))
            .unwrap();
        assert!(masks.trivial_assigns().contains(copy));
    }

    #[test]
    fn out_of_pool_variables_resolve_to_empty_masks() {
        let mut g =
            parse("start 1\nend 2\nnode 1 { x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2").unwrap();
        let universe = PatternUniverse::collect(&g);
        let masks = PatternMasks::build(&universe, g.pool().len());
        // A temp created after the build has no patterns.
        let late = g.temp_for(
            universe
                .expr_patterns()
                .next()
                .map(|(_, t)| t)
                .expect("one expression"),
        );
        assert!(masks.assign_lhs(late).is_empty());
        assert!(masks.expr_mentions(late).is_empty());
    }
}
