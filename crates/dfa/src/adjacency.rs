//! Compressed sparse adjacency over a dense point set.
//!
//! The solver's graphs are rebuilt every motion round and walked on every
//! solve, so their representation is on the hot path twice. A
//! `Vec<Vec<usize>>` pays one heap allocation per point and scatters
//! neighbor lists across the heap — on an XL point set (10⁴–10⁵ points)
//! the rebuild alone costs tens of milliseconds and every traversal
//! pointer-chases cold cache lines. [`Adjacency`] stores the same lists in
//! compressed sparse row form: one flat `targets` array plus one offset
//! per point. Rebuilds are two appends into recycled buffers, traversals
//! are contiguous slice scans, and the whole structure is two allocations
//! regardless of point count.

use std::ops::Index;

/// Neighbor lists of a dense point set in compressed sparse row form.
///
/// Point `p`'s neighbors are `targets[offsets[p]..offsets[p+1]]`, in the
/// order they were appended — the same order the equivalent
/// `Vec<Vec<usize>>` would hold them. Build one with [`from_lists`]
/// (tests, small graphs) or append points in index order with
/// [`start_point`]/[`push_neighbor`] (hot rebuilds into recycled buffers).
///
/// [`from_lists`]: Adjacency::from_lists
/// [`start_point`]: Adjacency::start_point
/// [`push_neighbor`]: Adjacency::push_neighbor
///
/// # Examples
///
/// ```
/// use am_dfa::Adjacency;
///
/// let adj = Adjacency::from_lists(&[vec![1, 2], vec![2], vec![]]);
/// assert_eq!(adj.len(), 3);
/// assert_eq!(adj.neighbors(0), &[1, 2]);
/// assert_eq!(&adj[1], &[2]);
/// assert!(adj.neighbors(2).is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Adjacency {
    /// `offsets[p]..offsets[p+1]` delimits point `p`'s neighbors; length
    /// is always point count + 1.
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Default for Adjacency {
    fn default() -> Self {
        Self::new()
    }
}

impl Adjacency {
    /// An adjacency with no points.
    pub fn new() -> Self {
        Adjacency {
            offsets: vec![0],
            targets: Vec::new(),
        }
    }

    /// Builds from per-point neighbor lists, preserving list order.
    pub fn from_lists(lists: &[Vec<usize>]) -> Self {
        let mut adj = Adjacency::new();
        adj.offsets.reserve(lists.len());
        adj.targets.reserve(lists.iter().map(Vec::len).sum());
        for list in lists {
            adj.start_point();
            for &q in list {
                adj.push_neighbor(q as u32);
            }
        }
        adj
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the point set is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of recorded neighbor entries (edges).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The neighbors of `p` in append order.
    pub fn neighbors(&self, p: usize) -> &[u32] {
        &self.targets[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// Number of neighbors of `p`.
    pub fn degree(&self, p: usize) -> usize {
        (self.offsets[p + 1] - self.offsets[p]) as usize
    }

    /// Drops all points, keeping the buffers for reuse.
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.targets.clear();
    }

    /// Reserves room for `points` further points and `edges` further
    /// neighbor entries.
    pub fn reserve(&mut self, points: usize, edges: usize) {
        self.offsets.reserve(points);
        self.targets.reserve(edges);
    }

    /// Opens the next point (index = current [`len`](Self::len)); its
    /// neighbors are whatever is [pushed](Self::push_neighbor) before the
    /// next `start_point`. Points must be appended in index order.
    pub fn start_point(&mut self) {
        let end = u32::try_from(self.targets.len()).expect("too many edges");
        self.offsets.push(end);
    }

    /// Appends `q` to the most recently started point's neighbors.
    ///
    /// # Panics
    ///
    /// Panics if no point was started.
    pub fn push_neighbor(&mut self, q: u32) {
        assert!(self.offsets.len() > 1, "no point started");
        self.targets.push(q);
        *self.offsets.last_mut().expect("non-empty offsets") += 1;
    }
}

impl Index<usize> for Adjacency {
    type Output = [u32];

    fn index(&self, p: usize) -> &[u32] {
        self.neighbors(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_building_matches_from_lists() {
        let lists = vec![vec![3, 1], vec![], vec![0, 2, 3], vec![1]];
        let from_lists = Adjacency::from_lists(&lists);
        let mut appended = Adjacency::new();
        for list in &lists {
            appended.start_point();
            for &q in list {
                appended.push_neighbor(q as u32);
            }
        }
        assert_eq!(appended, from_lists);
        assert_eq!(appended.len(), 4);
        assert_eq!(appended.edge_count(), 6);
        for (p, list) in lists.iter().enumerate() {
            let expect: Vec<u32> = list.iter().map(|&q| q as u32).collect();
            assert_eq!(appended.neighbors(p), expect.as_slice());
            assert_eq!(appended.degree(p), list.len());
        }
    }

    #[test]
    fn clear_recycles_for_a_fresh_build() {
        let mut adj = Adjacency::from_lists(&[vec![1], vec![0]]);
        adj.clear();
        assert!(adj.is_empty());
        assert_eq!(adj.edge_count(), 0);
        adj.start_point();
        adj.push_neighbor(0);
        assert_eq!(adj.len(), 1);
        assert_eq!(&adj[0], &[0]);
    }

    #[test]
    fn empty_points_have_no_neighbors() {
        let adj = Adjacency::from_lists(&[vec![], vec![]]);
        assert_eq!(adj.len(), 2);
        assert!(adj.neighbors(0).is_empty());
        assert_eq!(adj.degree(1), 0);
    }
}
