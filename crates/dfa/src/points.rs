//! Instruction-level program points.
//!
//! Tables 2 and 3 of the paper specify their analyses "at the instruction
//! level": each instruction ι has an entry fact `N-…_ι` and an exit fact
//! `X-…_ι`, with `pred(ι)`/`succ(ι)` ranging over adjacent instructions,
//! across block boundaries at block edges. [`PointGraph`] materializes this
//! view: one point per instruction, plus one virtual *pass-through* point
//! per empty block so that facts still propagate through blocks without
//! instructions (synthetic nodes from edge splitting are initially empty).

use am_ir::{FlowGraph, Instr, Loc, NodeId};

use crate::adjacency::Adjacency;
use crate::solve::Schedule;

/// Identifier of a program point (an instruction or a virtual pass-through).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The point's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The owned structural part of a [`PointGraph`]: point locations,
/// adjacency and the solver schedule. It depends only on per-block
/// instruction *counts* and block edges — never on instruction content —
/// so a caller that fingerprints that structure (the assignment-motion
/// loop) can detach it with [`PointGraph::into_data`] and re-attach it to
/// a later revision of the graph with [`PointGraph::attach`], skipping the
/// whole rebuild.
pub struct PointData {
    /// Location of each point; `None` for virtual points of empty blocks.
    locs: Vec<Option<Loc>>,
    node_of: Vec<NodeId>,
    first_of: Vec<PointId>,
    last_of: Vec<PointId>,
    preds: Adjacency,
    succs: Adjacency,
    schedule: Schedule,
}

impl PointData {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Returns `true` if there are no points (impossible for valid graphs).
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }
}

/// The instruction-level point graph of a flow graph.
pub struct PointGraph<'g> {
    graph: &'g FlowGraph,
    data: PointData,
}

impl<'g> PointGraph<'g> {
    /// Builds the point graph of `g`.
    pub fn build(g: &'g FlowGraph) -> Self {
        Self::build_reusing(g, None)
    }

    /// As [`build`](Self::build), recycling the allocations of a detached
    /// [`PointData`] from an *earlier revision* of the graph. The structure
    /// is recomputed from scratch — only the buffers (the flat adjacency
    /// arrays in particular) are reused, which matters when the motion
    /// loop rebuilds the point graph every round on graphs with 10⁴–10⁵
    /// points.
    pub fn build_reusing(g: &'g FlowGraph, recycled: Option<PointData>) -> Self {
        let (mut locs, mut node_of, mut first_of, mut last_of, mut preds, mut succs) =
            match recycled {
                Some(d) => (d.locs, d.node_of, d.first_of, d.last_of, d.preds, d.succs),
                None => Default::default(),
            };
        locs.clear();
        node_of.clear();
        first_of.clear();
        first_of.reserve(g.node_count());
        last_of.clear();
        last_of.reserve(g.node_count());
        for n in g.nodes() {
            let len = g.block(n).len();
            let first = PointId(locs.len() as u32);
            if len == 0 {
                locs.push(None);
                node_of.push(n);
            } else {
                for index in 0..len {
                    locs.push(Some(Loc { node: n, index }));
                    node_of.push(n);
                }
            }
            let last = PointId(locs.len() as u32 - 1);
            first_of.push(first);
            last_of.push(last);
        }
        let count = locs.len();
        // Every point's neighbor lists are known on sight — intra-block
        // chain plus block edges at the block boundary points — so both
        // CSR tables fill by pure append in point order: no per-point
        // allocation, no fill cursors.
        succs.clear();
        succs.reserve(count, count + count / 4);
        for n in g.nodes() {
            let first = first_of[n.index()].index();
            let last = last_of[n.index()].index();
            for p in first..last {
                succs.start_point();
                succs.push_neighbor(p as u32 + 1);
            }
            succs.start_point();
            for &m in g.succs(n) {
                succs.push_neighbor(first_of[m.index()].0);
            }
        }
        preds.clear();
        preds.reserve(count, succs.edge_count());
        for n in g.nodes() {
            let first = first_of[n.index()].index();
            let last = last_of[n.index()].index();
            preds.start_point();
            for &m in g.preds(n) {
                preds.push_neighbor(last_of[m.index()].0);
            }
            for p in first..last {
                preds.start_point();
                preds.push_neighbor(p as u32);
            }
        }
        let schedule = Schedule::build(&succs, &preds);
        PointGraph {
            graph: g,
            data: PointData {
                locs,
                node_of,
                first_of,
                last_of,
                preds,
                succs,
                schedule,
            },
        }
    }

    /// Attaches previously built [`PointData`] to `g`. The caller must
    /// guarantee the point structure is unchanged since the data was built
    /// — same per-block instruction counts and same block edges (the
    /// assignment-motion loop fingerprints both). Panics in debug builds
    /// when the point count disagrees.
    pub fn attach(g: &'g FlowGraph, data: PointData) -> Self {
        debug_assert_eq!(
            data.len(),
            g.nodes().map(|n| g.block(n).len().max(1)).sum::<usize>(),
            "stale point data for this flow graph"
        );
        PointGraph { graph: g, data }
    }

    /// Releases the owned structural data (and the borrow of the graph)
    /// for reuse via [`PointGraph::attach`].
    pub fn into_data(self) -> PointData {
        self.data
    }

    /// The underlying flow graph.
    pub fn graph(&self) -> &'g FlowGraph {
        self.graph
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.locs.len()
    }

    /// Returns `true` if the graph has no points (impossible for valid
    /// graphs, which have at least start and end).
    pub fn is_empty(&self) -> bool {
        self.data.locs.is_empty()
    }

    /// The instruction at `p`, or `None` for a virtual pass-through point.
    pub fn instr(&self, p: PointId) -> Option<&'g Instr> {
        let loc = self.data.locs[p.index()]?;
        Some(&self.graph.block(loc.node).instrs[loc.index])
    }

    /// The location of `p`, or `None` for a virtual point.
    pub fn loc(&self, p: PointId) -> Option<Loc> {
        self.data.locs[p.index()]
    }

    /// The node containing `p`.
    pub fn node(&self, p: PointId) -> NodeId {
        self.data.node_of[p.index()]
    }

    /// First point of block `n`.
    pub fn first_of(&self, n: NodeId) -> PointId {
        self.data.first_of[n.index()]
    }

    /// Last point of block `n`.
    pub fn last_of(&self, n: NodeId) -> PointId {
        self.data.last_of[n.index()]
    }

    /// The entry point of the program: first point of the start node (the
    /// paper's "first instruction of s").
    pub fn entry(&self) -> PointId {
        self.first_of(self.graph.start())
    }

    /// The exit point of the program: last point of the end node.
    pub fn exit(&self) -> PointId {
        self.last_of(self.graph.end())
    }

    /// Predecessor point adjacency (shared with the solver).
    pub fn preds(&self) -> &Adjacency {
        &self.data.preds
    }

    /// Successor point adjacency (shared with the solver).
    pub fn succs(&self) -> &Adjacency {
        &self.data.succs
    }

    /// Iterates over all points.
    pub fn points(&self) -> impl Iterator<Item = PointId> {
        (0..self.data.locs.len() as u32).map(PointId)
    }

    /// The priority schedule of this point set, computed once at build
    /// time; pass to [`solve_scheduled`](crate::solve_scheduled) to avoid
    /// re-deriving traversal orders per solve.
    pub fn schedule(&self) -> &Schedule {
        &self.data.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::parse;

    fn g() -> FlowGraph {
        parse(
            "start s\nend e\n\
             node s { a := 1; b := 2 }\n\
             node m { }\n\
             node e { out(a,b) }\n\
             edge s -> m\nedge m -> e",
        )
        .unwrap()
    }

    #[test]
    fn empty_blocks_get_virtual_points() {
        let g = g();
        let pg = PointGraph::build(&g);
        // 2 instrs in s, 1 virtual in m, 1 in e.
        assert_eq!(pg.len(), 4);
        let m = g.nodes().find(|&n| g.label(n) == "m").unwrap();
        let vp = pg.first_of(m);
        assert_eq!(vp, pg.last_of(m));
        assert!(pg.instr(vp).is_none());
        assert!(pg.loc(vp).is_none());
        assert_eq!(pg.node(vp), m);
    }

    #[test]
    fn adjacency_chains_through_blocks() {
        let g = g();
        let pg = PointGraph::build(&g);
        let entry = pg.entry();
        assert_eq!(entry.index(), 0);
        assert!(pg.preds()[entry.index()].is_empty());
        // s0 -> s1 -> m -> e0 (point ids follow node creation order).
        let m = g.nodes().find(|&n| g.label(n) == "m").unwrap();
        let m_pt = pg.first_of(m).index();
        let e_pt = pg.first_of(g.end()).index();
        assert_eq!(pg.succs()[0], [1]);
        assert_eq!(pg.succs()[1], [m_pt as u32]);
        assert_eq!(pg.succs()[m_pt], [e_pt as u32]);
        assert!(pg.succs()[e_pt].is_empty());
        assert_eq!(pg.exit().index(), e_pt);
        assert_eq!(pg.preds()[e_pt], [m_pt as u32]);
    }

    #[test]
    fn branch_fanout_in_points() {
        let g = parse(
            "start s\nend e\n\
             node s { branch x > 0 }\n\
             node a { x := 1 }\n\
             node b { x := 2 }\n\
             node e { out(x) }\n\
             edge s -> a, b\nedge a -> e\nedge b -> e",
        )
        .unwrap();
        let pg = PointGraph::build(&g);
        let s_last = pg.last_of(g.start());
        assert_eq!(pg.succs()[s_last.index()].len(), 2);
        let e_first = pg.first_of(g.end());
        assert_eq!(pg.preds()[e_first.index()].len(), 2);
    }

    #[test]
    fn instr_lookup_matches_blocks() {
        let g = g();
        let pg = PointGraph::build(&g);
        let p1 = PointId(1);
        let loc = pg.loc(p1).unwrap();
        assert_eq!(loc.index, 1);
        let instr = pg.instr(p1).unwrap();
        assert_eq!(instr.display(g.pool()), "b := 2");
    }
}

/// Block-level adjacency of a flow graph as dense index lists — the point
/// set for node-granularity analyses (Table 1 of the paper runs on whole
/// blocks rather than instructions).
pub fn node_adjacency(g: &FlowGraph) -> (Adjacency, Adjacency) {
    let mut succs = Adjacency::new();
    let mut preds = Adjacency::new();
    succs.reserve(g.node_count(), 0);
    preds.reserve(g.node_count(), 0);
    for n in g.nodes() {
        succs.start_point();
        for &m in g.succs(n) {
            succs.push_neighbor(m.index() as u32);
        }
        preds.start_point();
        for &m in g.preds(n) {
            preds.push_neighbor(m.index() as u32);
        }
    }
    (succs, preds)
}

#[cfg(test)]
mod node_adjacency_tests {
    use super::*;
    use am_ir::text::parse;

    #[test]
    fn mirrors_the_graph() {
        let g = parse(
            "start s\nend e\nnode s { branch p > 0 }\nnode a { skip }\nnode b { skip }\nnode e { out() }\nedge s -> a, b\nedge a -> e\nedge b -> e",
        )
        .unwrap();
        let (succs, preds) = node_adjacency(&g);
        assert_eq!(succs.len(), g.node_count());
        let s = g.start().index();
        assert_eq!(succs[s].len(), 2);
        assert!(preds[s].is_empty());
        let e = g.end().index();
        assert_eq!(preds[e].len(), 2);
        assert!(succs[e].is_empty());
    }
}
