//! Generic bit-vector data-flow framework over `am-ir` flow graphs.
//!
//! All four analyses of *The Power of Assignment Motion* (Tables 1–3) are
//! gen/kill bit-vector systems; this crate provides the shared machinery:
//!
//! * [`PointGraph`] — the instruction-level program-point view used by the
//!   redundancy (Table 2) and flush (Table 3) analyses;
//! * [`solve`] — the worklist fixed-point solver, parameterized over
//!   [`Direction`], [`Confluence`] (∏/Σ) and per-point gen/kill sets;
//!   must-systems are solved to greatest fixed points, may-systems to least;
//! * [`classic`] — availability, anticipability, liveness and reaching
//!   copies, used by the baseline transformations and as framework tests.
//!
//! # Examples
//!
//! ```
//! use am_dfa::{PointGraph, classic::available_expressions};
//! use am_ir::{text::parse, PatternUniverse, Term, BinOp};
//!
//! let g = parse("start 1\nend 2\nnode 1 { x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2")?;
//! let pg = PointGraph::build(&g);
//! let universe = PatternUniverse::collect(&g);
//! let sol = available_expressions(&pg, &universe);
//! let a = g.pool().lookup("a").unwrap();
//! let b = g.pool().lookup("b").unwrap();
//! let ab = universe.expr_id(&Term::binary(BinOp::Add, a, b)).unwrap();
//! assert!(sol.after[pg.exit().index()].contains(ab));
//! # Ok::<(), am_ir::text::ParseError>(())
//! ```

#![warn(missing_docs)]

mod adjacency;
pub mod classic;
mod masks;
mod partition;
mod points;
mod solve;

pub use adjacency::Adjacency;
pub use masks::PatternMasks;
pub use partition::{solve_partitioned, solve_partitioned_with, PartitionOptions};
pub use points::{node_adjacency, PointData, PointGraph, PointId};
pub use solve::{
    solve, solve_parallel, solve_scheduled, solve_scheduled_reusing, solve_seeded,
    solve_seeded_reusing, Confluence, Direction, Problem, Schedule, Solution,
};
