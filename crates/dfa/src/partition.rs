//! Point-partitioned parallel fixed-point solves over a single graph.
//!
//! [`solve_parallel`](crate::solve_parallel) splits the *bit universe*
//! across threads; this module splits the *point set*, which is the axis
//! that actually grows on XL workloads (10k–100k points over a universe of
//! a few hundred patterns). The design:
//!
//! * **Rank-contiguous partitions.** Points are permuted into the
//!   direction's priority order (the [`Schedule`] rank), and the rank axis
//!   is cut into contiguous chunks of roughly [`PartitionOptions::target_points`]
//!   points. Contiguity lets every worker own a `split_at_mut` slice of
//!   the fact arrays — no locks on the hot path.
//! * **Retreating-edge-safe cuts.** A cut between ranks `c-1` and `c` is
//!   only allowed when no edge runs from a rank `≥ c` back to a rank
//!   `< c`. Every loop (SCC) therefore sits wholly inside one partition,
//!   and all cross-partition edges point forward in rank order, so the
//!   partition dependency graph is acyclic.
//! * **Wavefront sweeps with boundary-frontier exchange.** Partitions are
//!   grouped into waves by longest-path level in that dependency DAG.
//!   Waves run in order; the partitions of one wave run concurrently on
//!   scoped workers, each draining a local priority worklist over its own
//!   slice. Between waves the frontier — the settled boundary rows a later
//!   wave reads — is snapshotted, so workers never observe a row mid-update.
//!
//! Because every cross-partition edge is forward in rank, a partition's
//! upstream rows are all settled by the time its wave runs: one pass over
//! the waves reaches the fixed point. The converged facts are **bit-identical**
//! to the serial solver's for any worker count — chaotic iteration of a
//! monotone gen/kill system from ⊤ (must) or ⊥ (may) can only stop at the
//! greatest (resp. least) fixed point, which is unique. Partition geometry,
//! wave order and metric accumulation depend only on the graph and the
//! options, never on thread timing, so iteration counters are deterministic
//! too (though, being per-partition sums, they differ from the serial
//! solver's counters).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};

use am_bitset::{ActiveWords, BitSet};

use crate::adjacency::Adjacency;
use crate::solve::{solve_scheduled, Confluence, Direction, Problem, Schedule, Solution};

/// Tuning knobs for [`solve_partitioned_with`].
#[derive(Clone, Debug)]
pub struct PartitionOptions {
    /// Worker threads to run wave partitions on. `1` falls back to the
    /// serial scheduled solver.
    pub workers: usize,
    /// Preferred points per partition; actual sizes stretch to the nearest
    /// retreating-edge-safe cut.
    pub target_points: usize,
    /// Graphs with fewer points than this are solved serially — partition
    /// bookkeeping only pays off once the point set is large.
    pub min_points: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            workers: 1,
            target_points: 2048,
            min_points: 4096,
        }
    }
}

impl PartitionOptions {
    /// Options for `workers` threads with the default size thresholds.
    pub fn with_workers(workers: usize) -> Self {
        PartitionOptions {
            workers,
            ..PartitionOptions::default()
        }
    }
}

/// Solves `problem` with the point set partitioned across `workers`
/// threads, using default size thresholds.
///
/// Facts are bit-identical to [`solve_scheduled`] for every worker count;
/// see the module docs for the argument. Falls back to the serial solver
/// for small graphs, `workers <= 1`, or when the rank axis admits no safe
/// cut (e.g. one giant loop).
///
/// # Panics
///
/// Panics under the same conditions as [`solve_scheduled`], and if
/// `workers == 0`.
pub fn solve_partitioned(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    schedule: &Schedule,
    workers: usize,
) -> Solution {
    solve_partitioned_with(
        succs,
        preds,
        problem,
        schedule,
        &PartitionOptions::with_workers(workers),
    )
}

/// [`solve_partitioned`] with explicit size thresholds (tests use tiny
/// thresholds to force partitioning on small graphs).
pub fn solve_partitioned_with(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    schedule: &Schedule,
    opts: &PartitionOptions,
) -> Solution {
    assert!(opts.workers > 0, "at least one worker required");
    let n = succs.len();
    if opts.workers == 1 || n < opts.min_points {
        return solve_scheduled(succs, preds, problem, schedule);
    }
    let (upstream, downstream) = match problem.direction {
        Direction::Forward => (preds, succs),
        Direction::Backward => (succs, preds),
    };
    let seq = schedule.seq(problem.direction);
    let ranks = schedule.ranks(problem.direction);
    assert_eq!(seq.len(), n, "schedule length mismatch");

    // Adjacency in rank space: up_ranks[r] lists the ranks feeding rank r.
    let mut up_ranks: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut down_ranks: Vec<Vec<u32>> = vec![Vec::new(); n];
    for r in 0..n {
        let p = seq[r] as usize;
        up_ranks[r] = upstream[p].iter().map(|&q| ranks[q as usize]).collect();
        down_ranks[r] = downstream[p].iter().map(|&q| ranks[q as usize]).collect();
    }

    let cuts = safe_cuts(&down_ranks, opts.target_points);
    if cuts.len() < 2 {
        // No admissible interior cut: the whole rank axis is one loop.
        return solve_scheduled(succs, preds, problem, schedule);
    }
    let parts = partition_ranges(&cuts);
    let waves = wave_levels(&parts, &up_ranks);

    // State permuted into rank order so each partition owns a contiguous
    // slice. Initialized to the confluence's neutral start, same as the
    // serial cold solve.
    let top = match problem.confluence {
        Confluence::Must => BitSet::full(problem.universe),
        Confluence::May => BitSet::new(problem.universe),
    };
    let mut in_by_rank: Vec<BitSet> = vec![top.clone(); n];
    let mut out_by_rank: Vec<BitSet> = vec![top; n];

    // Per-point transfer rows, indexed by rank, built eagerly (the cold
    // partitioned solve visits every point at least once).
    let rows: Vec<ActiveWords> = (0..n)
        .map(|r| {
            let p = seq[r] as usize;
            ActiveWords::build(&problem.gen[p], &problem.kill[p])
        })
        .collect();

    let mut iterations: u64 = 0;
    let mut worklist_pushes: u64 = 0;
    let mut max_worklist_len: usize = 0;

    for wave in &waves {
        // Boundary-frontier exchange: snapshot every settled row this
        // wave's partitions read from outside themselves. All such rows
        // are at lower ranks (cuts admit no retreating cross edge) and
        // belong to earlier waves, so they are final.
        let mut frontier: Vec<Option<BitSet>> = vec![None; n];
        for &k in wave {
            let range = &parts[k];
            for r in range.clone() {
                for &u in &up_ranks[r] {
                    let u = u as usize;
                    if !range.contains(&u) && frontier[u].is_none() {
                        frontier[u] = Some(out_by_rank[u].clone());
                    }
                }
            }
        }

        // Hand each partition of the wave its own contiguous slices.
        let mut jobs: Vec<PartitionJob> = Vec::with_capacity(wave.len());
        {
            let mut in_rest: &mut [BitSet] = &mut in_by_rank;
            let mut out_rest: &mut [BitSet] = &mut out_by_rank;
            let mut consumed = 0usize;
            for &k in wave {
                let range = parts[k].clone();
                let (_, in_tail) = in_rest.split_at_mut(range.start - consumed);
                let (in_slice, in_tail) = in_tail.split_at_mut(range.len());
                let (_, out_tail) = out_rest.split_at_mut(range.start - consumed);
                let (out_slice, out_tail) = out_tail.split_at_mut(range.len());
                in_rest = in_tail;
                out_rest = out_tail;
                consumed = range.end;
                jobs.push(PartitionJob {
                    range,
                    input: in_slice,
                    output: out_slice,
                    metrics: LocalMetrics::default(),
                });
            }
        }

        let threads = opts.workers.min(jobs.len());
        if threads <= 1 {
            for job in &mut jobs {
                run_partition(job, problem, seq, &up_ranks, &down_ranks, &rows, &frontier);
            }
        } else {
            let next = AtomicUsize::new(0);
            let job_cells: Vec<std::sync::Mutex<&mut PartitionJob>> =
                jobs.iter_mut().map(std::sync::Mutex::new).collect();
            let frontier = &frontier;
            let up_ranks = &up_ranks;
            let down_ranks = &down_ranks;
            let rows = &rows;
            let job_cells = &job_cells;
            let next = &next;
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= job_cells.len() {
                            break;
                        }
                        let mut job = job_cells[i].lock().expect("job lock");
                        run_partition(&mut job, problem, seq, up_ranks, down_ranks, rows, frontier);
                    });
                }
            });
        }

        // Metrics accumulate in partition order — worker-count independent.
        for job in &jobs {
            iterations += job.metrics.iterations;
            worklist_pushes += job.metrics.worklist_pushes;
            max_worklist_len = max_worklist_len.max(job.metrics.max_worklist_len);
        }
    }

    // Permute back to point order and undo the direction normalization.
    let mut merged_in = vec![BitSet::new(problem.universe); n];
    let mut transferred = vec![BitSet::new(problem.universe); n];
    for r in 0..n {
        let p = seq[r] as usize;
        std::mem::swap(&mut merged_in[p], &mut in_by_rank[r]);
        std::mem::swap(&mut transferred[p], &mut out_by_rank[r]);
    }
    let (before, after) = match problem.direction {
        Direction::Forward => (merged_in, transferred),
        Direction::Backward => (transferred, merged_in),
    };
    Solution {
        before,
        after,
        iterations,
        worklist_pushes,
        max_worklist_len,
    }
}

/// One wave-partition work item: the partition's rank range and its
/// exclusive slices of the rank-ordered fact arrays.
struct PartitionJob<'a> {
    range: std::ops::Range<usize>,
    input: &'a mut [BitSet],
    output: &'a mut [BitSet],
    metrics: LocalMetrics,
}

#[derive(Default)]
struct LocalMetrics {
    iterations: u64,
    worklist_pushes: u64,
    max_worklist_len: usize,
}

/// Drains one partition's local priority worklist. Upstream rows inside
/// the partition are read live from the owned slice; rows outside come
/// from the frozen `frontier` snapshot.
fn run_partition(
    job: &mut PartitionJob<'_>,
    problem: &Problem,
    seq: &[u32],
    up_ranks: &[Vec<u32>],
    down_ranks: &[Vec<u32>],
    rows: &[ActiveWords],
    frontier: &[Option<BitSet>],
) {
    let start = job.range.start;
    let len = job.range.len();
    let mut on_list = vec![true; len];
    // Seed every owned rank, lowest first — the cold-solve seeding.
    let mut heap: BinaryHeap<Reverse<u32>> =
        (start..job.range.end).map(|r| Reverse(r as u32)).collect();
    job.metrics.worklist_pushes += len as u64;
    job.metrics.max_worklist_len = job.metrics.max_worklist_len.max(heap.len());
    while let Some(Reverse(r)) = heap.pop() {
        let r = r as usize;
        let local = r - start;
        on_list[local] = false;
        job.metrics.iterations += 1;
        let p = seq[r] as usize;
        // Merge incoming facts into the owned entry row.
        if up_ranks[r].is_empty() {
            job.input[local].copy_from(&problem.boundary);
        } else {
            let mut first = true;
            for &q in &up_ranks[r] {
                let q = q as usize;
                // Borrow dance: the upstream row either lives in our own
                // output slice or in the frontier snapshot.
                let row: &BitSet = if job.range.contains(&q) {
                    &job.output[q - start]
                } else {
                    frontier[q]
                        .as_ref()
                        .expect("cross-partition upstream row must be frozen")
                };
                if first {
                    job.input[local].copy_from(row);
                    first = false;
                } else {
                    match problem.confluence {
                        Confluence::Must => job.input[local].intersect_with(row),
                        Confluence::May => job.input[local].union_with(row),
                    };
                }
            }
        }
        // Fused transfer with exact change detection.
        let changed = {
            let (input_row, output_row) = (&job.input[local], &mut job.output[local]);
            output_row.transfer_from(input_row, &problem.gen[p], &problem.kill[p], &rows[r])
        };
        if changed {
            for &q in &down_ranks[r] {
                let q = q as usize;
                // Downstream ranks outside the partition are handled by
                // later waves (cross edges always point rank-forward).
                if job.range.contains(&q) && !on_list[q - start] {
                    on_list[q - start] = true;
                    heap.push(Reverse(q as u32));
                    job.metrics.worklist_pushes += 1;
                }
            }
            job.metrics.max_worklist_len = job.metrics.max_worklist_len.max(heap.len());
        }
    }
}

/// Cut positions over the rank axis: ascending, always starting with 0 and
/// ending with `n`. A cut at `c` is admissible when no edge runs from a
/// rank `>= c` to a rank `< c` (no retreating edge across the cut), so
/// every loop stays inside one partition. Cuts are placed greedily at the
/// first admissible position at or after each `target_points` stride.
fn safe_cuts(down_ranks: &[Vec<u32>], target_points: usize) -> Vec<usize> {
    let n = down_ranks.len();
    let target = target_points.max(1);
    // unsafe_before[c] == true when some edge spans the boundary between
    // ranks c-1 and c. An edge a -> b with rank(b) <= rank(a) blocks every
    // cut in (rank(b), rank(a)].
    let mut retreat_from: Vec<u32> = vec![0; n]; // by target rank: max source
    let mut has_retreat = vec![false; n];
    for (a, downs) in down_ranks.iter().enumerate() {
        for &b in downs {
            let b = b as usize;
            if b <= a {
                has_retreat[b] = true;
                retreat_from[b] = retreat_from[b].max(a as u32);
            }
        }
    }
    let mut cuts = vec![0usize];
    let mut blocked_until = 0usize; // cuts <= this are blocked
    let mut next_target = target;
    for c in 1..n {
        if has_retreat[c - 1] {
            blocked_until = blocked_until.max(retreat_from[c - 1] as usize);
        }
        if c >= next_target && c > blocked_until {
            cuts.push(c);
            next_target = c + target;
        }
    }
    cuts.push(n);
    cuts
}

/// Expands cut positions into per-partition rank ranges.
fn partition_ranges(cuts: &[usize]) -> Vec<std::ops::Range<usize>> {
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Longest-path levels of the partition dependency DAG, grouped into
/// waves: `waves[l]` lists the partitions of level `l` in rank order.
/// Partition `k` depends on `j` when some point of `k` has an upstream
/// rank inside `j`; all such `j < k`, so one ascending pass suffices.
fn wave_levels(parts: &[std::ops::Range<usize>], up_ranks: &[Vec<u32>]) -> Vec<Vec<usize>> {
    let part_of = |rank: usize| -> usize { parts.partition_point(|range| range.end <= rank) };
    let mut level = vec![0usize; parts.len()];
    for (k, range) in parts.iter().enumerate() {
        let mut lvl = 0usize;
        for r in range.clone() {
            for &u in &up_ranks[r] {
                let j = part_of(u as usize);
                if j != k {
                    debug_assert!(j < k, "cross edges must point rank-forward");
                    lvl = lvl.max(level[j] + 1);
                }
            }
        }
        level[k] = lvl;
    }
    let depth = level.iter().max().map_or(0, |&l| l + 1);
    let mut waves = vec![Vec::new(); depth];
    for (k, &l) in level.iter().enumerate() {
        waves[l].push(k);
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve;

    fn tiny_opts(workers: usize) -> PartitionOptions {
        PartitionOptions {
            workers,
            target_points: 4,
            min_points: 0,
        }
    }

    fn random_setup(
        seed: u64,
        points: usize,
        universe: usize,
        confluence: Confluence,
        direction: Direction,
    ) -> (Adjacency, Adjacency, Problem) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut succs = vec![Vec::new(); points];
        let mut preds = vec![Vec::new(); points];
        for i in 0..points - 1 {
            succs[i].push(i + 1);
            preds[i + 1].push(i);
        }
        for _ in 0..points {
            let a = (next() as usize) % points;
            let b = (next() as usize) % points;
            if a != b && !succs[a].contains(&b) {
                succs[a].push(b);
                preds[b].push(a);
            }
        }
        let mut p = Problem::new(direction, confluence, points, universe);
        for _ in 0..universe * 2 {
            p.gen[(next() as usize) % points].insert((next() as usize) % universe);
            p.kill[(next() as usize) % points].insert((next() as usize) % universe);
        }
        (
            Adjacency::from_lists(&succs),
            Adjacency::from_lists(&preds),
            p,
        )
    }

    #[test]
    fn partitioned_matches_serial_on_random_graphs() {
        for seed in 0..12 {
            for (confluence, direction) in [
                (Confluence::Must, Direction::Forward),
                (Confluence::May, Direction::Forward),
                (Confluence::Must, Direction::Backward),
                (Confluence::May, Direction::Backward),
            ] {
                let (succs, preds, p) = random_setup(seed, 40, 24, confluence, direction);
                let schedule = Schedule::build(&succs, &preds);
                let serial = solve(&succs, &preds, &p);
                for workers in [1, 2, 4, 8] {
                    let par =
                        solve_partitioned_with(&succs, &preds, &p, &schedule, &tiny_opts(workers));
                    assert_eq!(
                        par.before, serial.before,
                        "seed {seed} {confluence:?} {direction:?} workers {workers}"
                    );
                    assert_eq!(
                        par.after, serial.after,
                        "seed {seed} {confluence:?} {direction:?} workers {workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn counters_are_worker_count_independent() {
        let (succs, preds, p) = random_setup(7, 60, 16, Confluence::Must, Direction::Forward);
        let schedule = Schedule::build(&succs, &preds);
        let reference = solve_partitioned_with(&succs, &preds, &p, &schedule, &tiny_opts(2));
        for workers in [3, 4, 8] {
            let par = solve_partitioned_with(&succs, &preds, &p, &schedule, &tiny_opts(workers));
            assert_eq!(par.iterations, reference.iterations, "workers {workers}");
            assert_eq!(par.worklist_pushes, reference.worklist_pushes);
            assert_eq!(par.max_worklist_len, reference.max_worklist_len);
        }
    }

    #[test]
    fn small_graphs_fall_back_to_the_serial_path() {
        let (succs, preds, p) = random_setup(3, 20, 8, Confluence::Must, Direction::Forward);
        let schedule = Schedule::build(&succs, &preds);
        let opts = PartitionOptions {
            workers: 4,
            target_points: 4,
            min_points: 1000,
        };
        let par = solve_partitioned_with(&succs, &preds, &p, &schedule, &opts);
        let serial = solve_scheduled(&succs, &preds, &p, &schedule);
        assert_eq!(par.before, serial.before);
        // Serial fallback also means serial counters.
        assert_eq!(par.iterations, serial.iterations);
        assert_eq!(par.worklist_pushes, serial.worklist_pushes);
    }

    #[test]
    fn one_giant_loop_admits_no_cut_and_falls_back() {
        // A single cycle through every point: every interior cut crosses
        // the back edge.
        let n = 32;
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, s) in succs.iter_mut().enumerate() {
            let j = (i + 1) % n;
            s.push(j);
            preds[j].push(i);
        }
        let succs = Adjacency::from_lists(&succs);
        let preds = Adjacency::from_lists(&preds);
        let mut p = Problem::new(Direction::Forward, Confluence::Must, n, 4);
        p.gen[0].insert(0);
        p.kill[5].insert(0);
        let schedule = Schedule::build(&succs, &preds);
        let par = solve_partitioned_with(&succs, &preds, &p, &schedule, &tiny_opts(4));
        let serial = solve_scheduled(&succs, &preds, &p, &schedule);
        assert_eq!(par.before, serial.before);
        assert_eq!(par.after, serial.after);
    }

    #[test]
    fn loops_never_straddle_a_cut() {
        // Three 8-point cycles chained together; target_points of 4 wants
        // to cut inside each cycle but must defer to its boundary.
        let n = 24;
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let link =
            |a: usize, b: usize, succs: &mut Vec<Vec<usize>>, preds: &mut Vec<Vec<usize>>| {
                succs[a].push(b);
                preds[b].push(a);
            };
        for c in 0..3 {
            let base = c * 8;
            for i in 0..7 {
                link(base + i, base + i + 1, &mut succs, &mut preds);
            }
            // Back edge to the loop header, exit edge to the next loop.
            link(base + 7, base, &mut succs, &mut preds);
            if c < 2 {
                link(base + 7, base + 8, &mut succs, &mut preds);
            }
        }
        let succs = Adjacency::from_lists(&succs);
        let preds = Adjacency::from_lists(&preds);
        let down_ranks: Vec<Vec<u32>> = {
            let schedule = Schedule::build(&succs, &preds);
            let ranks = schedule.ranks(Direction::Forward);
            let seq = schedule.seq(Direction::Forward);
            (0..n)
                .map(|r| {
                    succs[seq[r] as usize]
                        .iter()
                        .map(|&q| ranks[q as usize])
                        .collect()
                })
                .collect()
        };
        let cuts = safe_cuts(&down_ranks, 4);
        // Cuts may only fall on cycle boundaries (ranks 0, 8, 16, 24).
        for &c in &cuts {
            assert_eq!(c % 8, 0, "cut {c} lands inside a cycle");
        }
        assert!(cuts.len() > 2, "chained cycles admit interior cuts");

        let mut p = Problem::new(Direction::Forward, Confluence::Must, n, 6);
        p.gen[0].insert(0);
        p.gen[0].insert(3);
        p.kill[9].insert(3);
        p.gen[12].insert(1);
        let schedule = Schedule::build(&succs, &preds);
        let serial = solve_scheduled(&succs, &preds, &p, &schedule);
        for workers in [2, 4] {
            let par = solve_partitioned_with(&succs, &preds, &p, &schedule, &tiny_opts(workers));
            assert_eq!(par.before, serial.before);
            assert_eq!(par.after, serial.after);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let (succs, preds, p) = random_setup(1, 8, 4, Confluence::Must, Direction::Forward);
        let schedule = Schedule::build(&succs, &preds);
        solve_partitioned(&succs, &preds, &p, &schedule, 0);
    }
}
