//! Properties of the fixed-point solver on random point graphs:
//!
//! * the returned solution **is** a fixed point of the equations;
//! * it is extremal (greatest for must, least for may), checked against a
//!   naive round-robin reference solver;
//! * per-point facts are consistent with path semantics on acyclic graphs.

use am_bitset::BitSet;
use am_dfa::{solve, Confluence, Direction, Problem};
use proptest::prelude::*;

/// A random DAG plus optional back edges over `n` points.
#[derive(Clone, Debug)]
struct RandomFlow {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

fn random_flow(n: usize, edges: &[(usize, usize)], back_edges: bool) -> RandomFlow {
    let mut succs = vec![Vec::new(); n];
    let mut preds = vec![Vec::new(); n];
    // Skeleton chain keeps everything connected.
    for i in 0..n - 1 {
        succs[i].push(i + 1);
        preds[i + 1].push(i);
    }
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let (from, to) = if a < b || back_edges { (a, b) } else { (b, a) };
        if !succs[from].contains(&to) {
            succs[from].push(to);
            preds[to].push(from);
        }
    }
    RandomFlow { succs, preds }
}

fn random_problem(
    flow: &RandomFlow,
    universe: usize,
    direction: Direction,
    confluence: Confluence,
    gen_bits: &[(usize, usize)],
    kill_bits: &[(usize, usize)],
) -> Problem {
    let n = flow.succs.len();
    let mut p = Problem::new(direction, confluence, n, universe);
    for &(point, bit) in gen_bits {
        p.gen[point % n].insert(bit % universe);
    }
    for &(point, bit) in kill_bits {
        p.kill[point % n].insert(bit % universe);
    }
    p
}

/// Naive reference: iterate all points round-robin until nothing changes.
fn reference_solve(flow: &RandomFlow, p: &Problem) -> (Vec<BitSet>, Vec<BitSet>) {
    let n = flow.succs.len();
    let top = match p.confluence {
        Confluence::Must => BitSet::full(p.universe),
        Confluence::May => BitSet::new(p.universe),
    };
    let mut input = vec![top.clone(); n];
    let mut output = vec![top; n];
    let (upstream, _) = match p.direction {
        Direction::Forward => (&flow.preds, &flow.succs),
        Direction::Backward => (&flow.succs, &flow.preds),
    };
    loop {
        let mut changed = false;
        for point in 0..n {
            let mut merged = if upstream[point].is_empty() {
                p.boundary.clone()
            } else {
                match p.confluence {
                    Confluence::Must => {
                        let mut acc = BitSet::full(p.universe);
                        for &q in &upstream[point] {
                            acc.intersect_with(&output[q]);
                        }
                        acc
                    }
                    Confluence::May => {
                        let mut acc = BitSet::new(p.universe);
                        for &q in &upstream[point] {
                            acc.union_with(&output[q]);
                        }
                        acc
                    }
                }
            };
            changed |= input[point].copy_from(&merged);
            merged.difference_with(&p.kill[point]);
            merged.union_with(&p.gen[point]);
            changed |= output[point].copy_from(&merged);
        }
        if !changed {
            break;
        }
    }
    match p.direction {
        Direction::Forward => (input, output),
        Direction::Backward => (output, input),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn worklist_matches_round_robin_reference(
        n in 2usize..14,
        universe in 1usize..20,
        edges in proptest::collection::vec((0usize..14, 0usize..14), 0..16),
        back in proptest::bool::ANY,
        gen_bits in proptest::collection::vec((0usize..14, 0usize..20), 0..20),
        kill_bits in proptest::collection::vec((0usize..14, 0usize..20), 0..20),
        fwd in proptest::bool::ANY,
        must in proptest::bool::ANY,
    ) {
        let flow = random_flow(n, &edges, back);
        let direction = if fwd { Direction::Forward } else { Direction::Backward };
        let confluence = if must { Confluence::Must } else { Confluence::May };
        let p = random_problem(&flow, universe, direction, confluence, &gen_bits, &kill_bits);
        let sol = solve(&flow.succs, &flow.preds, &p);
        let (ref_before, ref_after) = reference_solve(&flow, &p);
        for point in 0..n {
            prop_assert_eq!(&sol.before[point], &ref_before[point], "before at {}", point);
            prop_assert_eq!(&sol.after[point], &ref_after[point], "after at {}", point);
        }
    }

    #[test]
    fn solution_is_a_fixed_point(
        n in 2usize..14,
        universe in 1usize..20,
        edges in proptest::collection::vec((0usize..14, 0usize..14), 0..16),
        gen_bits in proptest::collection::vec((0usize..14, 0usize..20), 0..20),
        kill_bits in proptest::collection::vec((0usize..14, 0usize..20), 0..20),
        must in proptest::bool::ANY,
    ) {
        let flow = random_flow(n, &edges, true);
        let confluence = if must { Confluence::Must } else { Confluence::May };
        let p = random_problem(&flow, universe, Direction::Forward, confluence, &gen_bits, &kill_bits);
        let sol = solve(&flow.succs, &flow.preds, &p);
        for point in 0..n {
            // before = merge over preds (or boundary).
            let expected_before = if flow.preds[point].is_empty() {
                p.boundary.clone()
            } else {
                match confluence {
                    Confluence::Must => {
                        let mut acc = BitSet::full(universe);
                        for &q in &flow.preds[point] {
                            acc.intersect_with(&sol.after[q]);
                        }
                        acc
                    }
                    Confluence::May => {
                        let mut acc = BitSet::new(universe);
                        for &q in &flow.preds[point] {
                            acc.union_with(&sol.after[q]);
                        }
                        acc
                    }
                }
            };
            prop_assert_eq!(&sol.before[point], &expected_before);
            // after = gen ∪ (before ∖ kill).
            let mut expected_after = sol.before[point].clone();
            expected_after.difference_with(&p.kill[point]);
            expected_after.union_with(&p.gen[point]);
            prop_assert_eq!(&sol.after[point], &expected_after);
        }
    }

    #[test]
    fn acyclic_forward_may_equals_reachability(
        n in 2usize..12,
        universe in 1usize..8,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..12),
        gen_bits in proptest::collection::vec((0usize..12, 0usize..8), 1..8),
    ) {
        // On a DAG with no kills, a forward-may fact holds after p iff some
        // point generating it reaches p (reflexively).
        let flow = random_flow(n, &edges, false);
        let p = random_problem(&flow, universe, Direction::Forward, Confluence::May, &gen_bits, &[]);
        let sol = solve(&flow.succs, &flow.preds, &p);
        // Reachability closure per bit.
        for bit in 0..universe {
            let mut holds_after = vec![false; n];
            for point in 0..n {
                // Topological order: skeleton guarantees index order works
                // for the forward direction (all extra edges go forward).
                let incoming = flow.preds[point].iter().any(|&q| holds_after[q]);
                holds_after[point] = p.gen[point].contains(bit) || incoming;
                prop_assert_eq!(sol.after[point].contains(bit), holds_after[point]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn worklist_iteration_count_is_bounded(
        n in 2usize..14,
        universe in 1usize..20,
        edges in proptest::collection::vec((0usize..14, 0usize..14), 0..16),
        back in proptest::bool::ANY,
        gen_bits in proptest::collection::vec((0usize..14, 0usize..20), 0..20),
        kill_bits in proptest::collection::vec((0usize..14, 0usize..20), 0..20),
        fwd in proptest::bool::ANY,
        must in proptest::bool::ANY,
    ) {
        // Monotone gen/kill systems: every point's output changes at most
        // `universe` times after its first computation, and each change
        // requeues at most `max_degree` neighbours. The worklist must stay
        // within n + n·universe·max_degree point updates.
        let flow = random_flow(n, &edges, back);
        let direction = if fwd { Direction::Forward } else { Direction::Backward };
        let confluence = if must { Confluence::Must } else { Confluence::May };
        let p = random_problem(&flow, universe, direction, confluence, &gen_bits, &kill_bits);
        let sol = solve(&flow.succs, &flow.preds, &p);
        let max_degree = flow
            .succs
            .iter()
            .chain(flow.preds.iter())
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(1);
        let bound = (n + n * universe * max_degree) as u64;
        prop_assert!(
            sol.iterations <= bound,
            "{} iterations exceeds bound {}",
            sol.iterations,
            bound
        );
    }
}
