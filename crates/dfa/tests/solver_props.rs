//! Properties of the fixed-point solver on random point graphs:
//!
//! * the returned solution **is** a fixed point of the equations;
//! * it is extremal (greatest for must, least for may), checked against a
//!   naive round-robin reference solver;
//! * per-point facts are consistent with path semantics on acyclic graphs;
//! * the scheduled and seeded (incremental) solvers are bit-identical to
//!   the naive reference on all of the classic analyses, over the shared
//!   80-program corpus plus 200 extra seeded random programs.
//!
//! Randomized via `am_ir::rng::SplitMix64`; every case is reproducible
//! from its printed case number or seed.

use am_bitset::BitSet;
use am_dfa::classic::{
    anticipated_expressions_problem, available_expressions_problem, live_variables_problem,
    partially_available_expressions_problem, reaching_copies_problem,
};
use am_dfa::{
    solve, solve_partitioned_with, solve_scheduled, solve_seeded, Adjacency, Confluence, Direction,
    PartitionOptions, PointGraph, Problem,
};
use am_ir::random::{corpus80, structured, unstructured, StructuredConfig, UnstructuredConfig};
use am_ir::rng::SplitMix64;
use am_ir::{reference_universe, FlowGraph, PatternUniverse};

/// A random DAG plus optional back edges over `n` points.
#[derive(Clone, Debug)]
struct RandomFlow {
    succs: Adjacency,
    preds: Adjacency,
}

fn random_flow(n: usize, edges: &[(usize, usize)], back_edges: bool) -> RandomFlow {
    let mut succs = vec![Vec::new(); n];
    let mut preds = vec![Vec::new(); n];
    // Skeleton chain keeps everything connected.
    for i in 0..n - 1 {
        succs[i].push(i + 1);
        preds[i + 1].push(i);
    }
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let (from, to) = if a < b || back_edges { (a, b) } else { (b, a) };
        if !succs[from].contains(&to) {
            succs[from].push(to);
            preds[to].push(from);
        }
    }
    RandomFlow {
        succs: Adjacency::from_lists(&succs),
        preds: Adjacency::from_lists(&preds),
    }
}

fn random_problem(
    flow: &RandomFlow,
    universe: usize,
    direction: Direction,
    confluence: Confluence,
    gen_bits: &[(usize, usize)],
    kill_bits: &[(usize, usize)],
) -> Problem {
    let n = flow.succs.len();
    let mut p = Problem::new(direction, confluence, n, universe);
    for &(point, bit) in gen_bits {
        p.gen[point % n].insert(bit % universe);
    }
    for &(point, bit) in kill_bits {
        p.kill[point % n].insert(bit % universe);
    }
    p
}

fn pairs(rng: &mut SplitMix64, max_len: usize, a: usize, b: usize) -> Vec<(usize, usize)> {
    let n = rng.gen_range(0..max_len);
    (0..n)
        .map(|_| (rng.gen_range(0..a), rng.gen_range(0..b)))
        .collect()
}

/// Naive reference: iterate all points round-robin until nothing changes.
fn reference_solve(flow: &RandomFlow, p: &Problem) -> (Vec<BitSet>, Vec<BitSet>) {
    let n = flow.succs.len();
    let top = match p.confluence {
        Confluence::Must => BitSet::full(p.universe),
        Confluence::May => BitSet::new(p.universe),
    };
    let mut input = vec![top.clone(); n];
    let mut output = vec![top; n];
    let (upstream, _) = match p.direction {
        Direction::Forward => (&flow.preds, &flow.succs),
        Direction::Backward => (&flow.succs, &flow.preds),
    };
    loop {
        let mut changed = false;
        for point in 0..n {
            let mut merged = if upstream[point].is_empty() {
                p.boundary.clone()
            } else {
                match p.confluence {
                    Confluence::Must => {
                        let mut acc = BitSet::full(p.universe);
                        for &q in &upstream[point] {
                            acc.intersect_with(&output[q as usize]);
                        }
                        acc
                    }
                    Confluence::May => {
                        let mut acc = BitSet::new(p.universe);
                        for &q in &upstream[point] {
                            acc.union_with(&output[q as usize]);
                        }
                        acc
                    }
                }
            };
            changed |= input[point].copy_from(&merged);
            merged.difference_with(&p.kill[point]);
            merged.union_with(&p.gen[point]);
            changed |= output[point].copy_from(&merged);
        }
        if !changed {
            break;
        }
    }
    match p.direction {
        Direction::Forward => (input, output),
        Direction::Backward => (output, input),
    }
}

#[test]
fn worklist_matches_round_robin_reference() {
    let mut rng = SplitMix64::new(0xDFA_001);
    for case in 0..128 {
        let n = rng.gen_range(2..14usize);
        let universe = rng.gen_range(1..20usize);
        let edges = pairs(&mut rng, 16, 14, 14);
        let back = rng.gen_bool(0.5);
        let gen_bits = pairs(&mut rng, 20, 14, 20);
        let kill_bits = pairs(&mut rng, 20, 14, 20);
        let direction = if rng.gen_bool(0.5) {
            Direction::Forward
        } else {
            Direction::Backward
        };
        let confluence = if rng.gen_bool(0.5) {
            Confluence::Must
        } else {
            Confluence::May
        };
        let flow = random_flow(n, &edges, back);
        let p = random_problem(
            &flow, universe, direction, confluence, &gen_bits, &kill_bits,
        );
        let sol = solve(&flow.succs, &flow.preds, &p);
        let (ref_before, ref_after) = reference_solve(&flow, &p);
        for point in 0..n {
            assert_eq!(
                &sol.before[point], &ref_before[point],
                "case {case} before at {point}"
            );
            assert_eq!(
                &sol.after[point], &ref_after[point],
                "case {case} after at {point}"
            );
        }
    }
}

#[test]
fn solution_is_a_fixed_point() {
    let mut rng = SplitMix64::new(0xDFA_002);
    for case in 0..128 {
        let n = rng.gen_range(2..14usize);
        let universe = rng.gen_range(1..20usize);
        let edges = pairs(&mut rng, 16, 14, 14);
        let gen_bits = pairs(&mut rng, 20, 14, 20);
        let kill_bits = pairs(&mut rng, 20, 14, 20);
        let confluence = if rng.gen_bool(0.5) {
            Confluence::Must
        } else {
            Confluence::May
        };
        let flow = random_flow(n, &edges, true);
        let p = random_problem(
            &flow,
            universe,
            Direction::Forward,
            confluence,
            &gen_bits,
            &kill_bits,
        );
        let sol = solve(&flow.succs, &flow.preds, &p);
        for point in 0..n {
            // before = merge over preds (or boundary).
            let expected_before = if flow.preds[point].is_empty() {
                p.boundary.clone()
            } else {
                match confluence {
                    Confluence::Must => {
                        let mut acc = BitSet::full(universe);
                        for &q in &flow.preds[point] {
                            acc.intersect_with(&sol.after[q as usize]);
                        }
                        acc
                    }
                    Confluence::May => {
                        let mut acc = BitSet::new(universe);
                        for &q in &flow.preds[point] {
                            acc.union_with(&sol.after[q as usize]);
                        }
                        acc
                    }
                }
            };
            assert_eq!(
                &sol.before[point], &expected_before,
                "case {case} point {point}"
            );
            // after = gen ∪ (before ∖ kill).
            let mut expected_after = sol.before[point].clone();
            expected_after.difference_with(&p.kill[point]);
            expected_after.union_with(&p.gen[point]);
            assert_eq!(
                &sol.after[point], &expected_after,
                "case {case} point {point}"
            );
        }
    }
}

#[test]
fn acyclic_forward_may_equals_reachability() {
    let mut rng = SplitMix64::new(0xDFA_003);
    for case in 0..128 {
        let n = rng.gen_range(2..12usize);
        let universe = rng.gen_range(1..8usize);
        let edges = pairs(&mut rng, 12, 12, 12);
        let gen_bits = {
            let len = rng.gen_range(1..8usize);
            (0..len)
                .map(|_| (rng.gen_range(0..12usize), rng.gen_range(0..8usize)))
                .collect::<Vec<_>>()
        };
        // On a DAG with no kills, a forward-may fact holds after p iff some
        // point generating it reaches p (reflexively).
        let flow = random_flow(n, &edges, false);
        let p = random_problem(
            &flow,
            universe,
            Direction::Forward,
            Confluence::May,
            &gen_bits,
            &[],
        );
        let sol = solve(&flow.succs, &flow.preds, &p);
        // Reachability closure per bit.
        for bit in 0..universe {
            let mut holds_after = vec![false; n];
            for point in 0..n {
                // Topological order: skeleton guarantees index order works
                // for the forward direction (all extra edges go forward).
                let incoming = flow.preds[point].iter().any(|&q| holds_after[q as usize]);
                holds_after[point] = p.gen[point].contains(bit) || incoming;
                assert_eq!(
                    sol.after[point].contains(bit),
                    holds_after[point],
                    "case {case} bit {bit} point {point}"
                );
            }
        }
    }
}

/// The four classic analyses of the paper's baselines — availability,
/// anticipability, liveness, reaching copies — plus partial availability,
/// so every direction × confluence combination is exercised.
fn classic_problems(
    pg: &PointGraph<'_>,
    universe: &PatternUniverse,
) -> Vec<(&'static str, Problem)> {
    vec![
        ("available", available_expressions_problem(pg, universe)),
        ("anticipated", anticipated_expressions_problem(pg, universe)),
        (
            "partially-available",
            partially_available_expressions_problem(pg, universe),
        ),
        ("live", live_variables_problem(pg)),
        ("reaching-copies", reaching_copies_problem(pg, universe)),
    ]
}

/// Scheduling and warm seeding are pure performance devices: the fixed
/// point of a gen/kill system is unique per extremum, so every strategy
/// must land on identical facts. Checks the scheduled solver and a
/// full-seed warm restart of `solve_seeded` against the naive reference on
/// every classic analysis over `g`.
fn check_classic_equivalence(name: &str, g: &FlowGraph) {
    let pg = PointGraph::build(g);
    let universe = PatternUniverse::collect(g);
    let flow = RandomFlow {
        succs: pg.succs().clone(),
        preds: pg.preds().clone(),
    };
    let every_point: Vec<usize> = (0..pg.len()).collect();
    for (analysis, problem) in classic_problems(&pg, &universe) {
        let (ref_before, ref_after) = reference_solve(&flow, &problem);
        let scheduled = solve_scheduled(pg.succs(), pg.preds(), &problem, pg.schedule());
        assert_eq!(
            scheduled.before, ref_before,
            "{name}/{analysis}: scheduled before-facts diverge from naive"
        );
        assert_eq!(
            scheduled.after, ref_after,
            "{name}/{analysis}: scheduled after-facts diverge from naive"
        );
        // Warm restart from the converged facts with every point dirty:
        // one no-op sweep over a solved system, identical fixed point.
        let warm = solve_seeded(
            pg.succs(),
            pg.preds(),
            &problem,
            pg.schedule(),
            &scheduled,
            &every_point,
        );
        assert_eq!(
            warm.before, ref_before,
            "{name}/{analysis}: seeded before-facts diverge from naive"
        );
        assert_eq!(
            warm.after, ref_after,
            "{name}/{analysis}: seeded after-facts diverge from naive"
        );
        // The point-partitioned parallel solver must land on bit-identical
        // facts for every worker count. Thresholds are forced low so the
        // partitioned path actually engages on these small graphs instead
        // of taking its serial fallback.
        for workers in [1usize, 2, 4, 8] {
            let opts = PartitionOptions {
                workers,
                target_points: 4,
                min_points: 0,
            };
            let part =
                solve_partitioned_with(pg.succs(), pg.preds(), &problem, pg.schedule(), &opts);
            assert_eq!(
                part.before, ref_before,
                "{name}/{analysis}: partitioned before-facts diverge (workers={workers})"
            );
            assert_eq!(
                part.after, ref_after,
                "{name}/{analysis}: partitioned after-facts diverge (workers={workers})"
            );
        }
    }
}

/// Interned-vs-structural differential for the pattern universe: the
/// arena-backed `PatternUniverse::collect` must enumerate exactly the
/// patterns the naive linear-scan `reference_universe` finds — same
/// content, same first-occurrence order, both for assignment patterns and
/// for the expression universe the classic gen/kill systems are built
/// over. Any divergence here would silently re-index every bit vector.
fn check_universe_equivalence(name: &str, g: &FlowGraph) {
    let interned = PatternUniverse::collect(g);
    let (ref_assigns, ref_exprs) = reference_universe(g);
    let assigns: Vec<_> = interned.assign_patterns().map(|(_, p)| p).collect();
    assert_eq!(
        assigns, ref_assigns,
        "{name}: assign-pattern universe diverges"
    );
    let exprs: Vec<_> = interned.expr_patterns().map(|(_, t)| t).collect();
    assert_eq!(exprs, ref_exprs, "{name}: expression universe diverges");
    for (i, t) in ref_exprs.iter().enumerate() {
        assert_eq!(interned.expr_id(t), Some(i), "{name}: expr id lookup {i}");
    }
    for (i, p) in ref_assigns.iter().enumerate() {
        assert_eq!(
            interned.assign_id(p),
            Some(i),
            "{name}: assign id lookup {i}"
        );
    }
    interned
        .arena()
        .verify()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
}

#[test]
fn classic_analyses_match_naive_reference_on_the_corpus() {
    for (name, g) in corpus80() {
        check_classic_equivalence(&name, &g);
        check_universe_equivalence(&name, &g);
    }
}

#[test]
fn classic_analyses_match_naive_reference_on_random_graphs() {
    // 200 programs beyond the corpus: 100 structured (reducible, nested
    // loops) and 100 unstructured (random extra edges, often irreducible),
    // seeded apart from the corpus seed ranges.
    for seed in 1000..1100u64 {
        let mut rng = SplitMix64::new(seed);
        let g = structured(
            &mut rng,
            &StructuredConfig {
                allow_div: seed % 2 == 0,
                max_depth: 2 + (seed as usize % 3),
                ..Default::default()
            },
        );
        check_classic_equivalence(&format!("structured/{seed}"), &g);
        check_universe_equivalence(&format!("structured/{seed}"), &g);
    }
    for seed in 2000..2100u64 {
        let mut rng = SplitMix64::new(seed);
        let g = unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes: 4 + (seed as usize % 16),
                extra_edges: 1 + (seed as usize % 10),
                max_instrs: 4,
                num_vars: 6,
                allow_div: seed % 3 == 0,
            },
        );
        check_classic_equivalence(&format!("unstructured/{seed}"), &g);
        check_universe_equivalence(&format!("unstructured/{seed}"), &g);
    }
}

#[test]
fn worklist_iteration_count_is_bounded() {
    let mut rng = SplitMix64::new(0xDFA_004);
    for case in 0..128 {
        let n = rng.gen_range(2..14usize);
        let universe = rng.gen_range(1..20usize);
        let edges = pairs(&mut rng, 16, 14, 14);
        let back = rng.gen_bool(0.5);
        let gen_bits = pairs(&mut rng, 20, 14, 20);
        let kill_bits = pairs(&mut rng, 20, 14, 20);
        let direction = if rng.gen_bool(0.5) {
            Direction::Forward
        } else {
            Direction::Backward
        };
        let confluence = if rng.gen_bool(0.5) {
            Confluence::Must
        } else {
            Confluence::May
        };
        // Monotone gen/kill systems: every point's output changes at most
        // `universe` times after its first computation, and each change
        // requeues at most `max_degree` neighbours. The worklist must stay
        // within n + n·universe·max_degree point updates.
        let flow = random_flow(n, &edges, back);
        let p = random_problem(
            &flow, universe, direction, confluence, &gen_bits, &kill_bits,
        );
        let sol = solve(&flow.succs, &flow.preds, &p);
        let max_degree = (0..n)
            .map(|p| flow.succs.degree(p).max(flow.preds.degree(p)))
            .max()
            .unwrap_or(0)
            .max(1);
        let bound = (n + n * universe * max_degree) as u64;
        assert!(
            sol.iterations <= bound,
            "case {case}: {} iterations exceeds bound {}",
            sol.iterations,
            bound
        );
    }
}
