//! Well-formedness verification: the structural invariants of Sec. 2
//! (`L001`–`L007`) and the def-before-use / naming discipline the motion
//! phases must maintain for temporaries (`L010`, `L011`).

use am_dfa::{solve, Confluence, Direction, PointGraph, Problem};
use am_ir::{GraphError, Instr, Var};

use crate::diag::{Diagnostic, Severity};
use crate::Ctx;

/// Structural CFG invariants. These gate the dataflow-based lints: a graph
/// that fails here has no meaningful point graph.
pub(crate) fn check_structure(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let g = ctx.g;
    if let Err(e) = g.validate() {
        out.push(match e {
            GraphError::StartHasPreds => ctx.at_node(
                "L001",
                Severity::Error,
                g.start(),
                "start node has incoming edges (Sec. 2 requires a unique entry)".into(),
            ),
            GraphError::EndHasSuccs => ctx.at_node(
                "L002",
                Severity::Error,
                g.end(),
                "end node has outgoing edges (Sec. 2 requires a unique exit)".into(),
            ),
            GraphError::Unreachable(n) => ctx.at_node(
                "L003",
                Severity::Error,
                n,
                "node is not on any path from start to end".into(),
            ),
            GraphError::BranchInStraightNode(n) => ctx.at_node(
                "L004",
                Severity::Error,
                n,
                "node contains a branch but has at most one successor".into(),
            ),
            GraphError::MultipleBranches(n) => ctx.at_node(
                "L005",
                Severity::Error,
                n,
                "node contains more than one branch instruction".into(),
            ),
            GraphError::DuplicateEdge(m, n) => ctx.at_node(
                "L006",
                Severity::Error,
                m,
                format!("duplicate edge to node {}", g.label(n)),
            ),
        });
        return;
    }
    // Edge-list mirror consistency: succs and preds must describe the same
    // edge set. Unreachable through the public graph API, but linting also
    // guards hand-constructed and future deserialized graphs.
    for n in g.nodes() {
        for &s in g.succs(n) {
            if !g.preds(s).contains(&n) {
                out.push(ctx.at_node(
                    "L007",
                    Severity::Error,
                    n,
                    format!(
                        "edge to node {} is missing from that node's predecessor list",
                        g.label(s)
                    ),
                ));
            }
        }
        for &p in g.preds(n) {
            if !g.succs(p).contains(&n) {
                out.push(ctx.at_node(
                    "L007",
                    Severity::Error,
                    n,
                    format!(
                        "edge from node {} is missing from that node's successor list",
                        g.label(p)
                    ),
                ));
            }
        }
    }
}

/// Temporary def-before-use (`L010`) and `h_t` naming discipline (`L011`).
///
/// Source variables are free program inputs, so only temporaries — which
/// the optimizer itself introduces and is responsible for initializing on
/// every path before every use (the initialization phase of Table 3) — are
/// held to definite assignment.
pub(crate) fn check_defuse(ctx: &Ctx<'_>, pg: &PointGraph<'_>, out: &mut Vec<Diagnostic>) {
    let g = ctx.g;
    let pool = g.pool();

    // Definite assignment: forward/must over the variable universe;
    // `before[p]` then holds the variables written on *every* path to `p`.
    let mut p = Problem::new(Direction::Forward, Confluence::Must, pg.len(), pool.len());
    for point in pg.points() {
        if let Some(d) = pg.instr(point).and_then(Instr::def) {
            p.gen[point.index()].insert(d.index());
        }
    }
    let definite = solve(pg.succs(), pg.preds(), &p);

    for point in pg.points() {
        let Some(instr) = pg.instr(point) else {
            continue;
        };
        let loc = pg.loc(point).expect("instruction points carry locations");
        let mut used: Vec<Var> = Vec::new();
        instr.for_each_use(|v| {
            if pool.is_temp(v) && !used.contains(&v) {
                used.push(v);
            }
        });
        for v in used {
            if !definite.before[point.index()].contains(v.index()) {
                out.push(ctx.at(
                    "L010",
                    Severity::Error,
                    loc,
                    format!(
                        "temporary '{}' may be read before initialization on some path",
                        pool.name(v)
                    ),
                ));
            }
        }
        if let Instr::Assign { lhs, rhs } = instr {
            // Only machine-named temporaries carry their defining expression
            // in the name; alpha-renamed programs (h1, h2, ...) are exempt.
            let name = pool.name(*lhs);
            if pool.is_temp(*lhs) && name.starts_with("h<") {
                let expected = format!("h<{}>", rhs.display(pool));
                if name != expected {
                    out.push(ctx.at(
                        "L011",
                        Severity::Error,
                        loc,
                        format!(
                            "temporary '{name}' is initialized with '{}', not its \
                             defining expression (initialization discipline, Table 3)",
                            rhs.display(pool)
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use am_ir::text::parse;
    use am_ir::{BinOp, FlowGraph, Instr, NodeId, Term, Var};

    use crate::{lint_graph, LintConfig, Severity};

    fn codes(g: &FlowGraph) -> Vec<&'static str> {
        lint_graph(g, &LintConfig::default())
            .diags
            .iter()
            .map(|d| d.code)
            .collect()
    }

    /// `start -> end` skeleton; temps must be built in memory because the
    /// text parser does not mark variables as temporaries.
    fn skeleton() -> (FlowGraph, NodeId, NodeId, Var, Var, Var) {
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, e);
        let a = g.pool_mut().intern("a");
        let b = g.pool_mut().intern("b");
        let x = g.pool_mut().intern("x");
        (g, s, e, a, b, x)
    }

    #[test]
    fn clean_graph_has_no_structural_findings() {
        let g = parse("start s\nend e\nnode s { x := 1 }\nnode e { out(x) }\nedge s -> e").unwrap();
        assert!(codes(&g).is_empty(), "{:?}", codes(&g));
    }

    #[test]
    fn unreachable_node_is_l003_and_gates_dataflow() {
        let (mut g, s, e, _, _, x) = skeleton();
        g.block_mut(s).instrs.push(Instr::assign(x, 1));
        g.block_mut(e).instrs.push(Instr::Out(vec![x.into()]));
        g.add_node("island");
        let report = lint_graph(&g, &LintConfig::default());
        assert_eq!(
            report.diags.iter().map(|d| d.code).collect::<Vec<_>>(),
            vec!["L003"]
        );
        assert_eq!(report.worst(), Some(Severity::Error));
    }

    #[test]
    fn uninitialized_temp_read_is_l010() {
        // h<a+b> is read but never assigned.
        let (mut g, _, e, a, b, x) = skeleton();
        let h = g.temp_for(Term::binary(BinOp::Add, a, b));
        g.block_mut(e).instrs.push(Instr::assign(x, h));
        g.block_mut(e).instrs.push(Instr::Out(vec![x.into()]));
        assert!(codes(&g).contains(&"L010"));
    }

    #[test]
    fn initialized_temp_read_is_clean_of_l010() {
        let (mut g, s, e, a, b, x) = skeleton();
        let t = Term::binary(BinOp::Add, a, b);
        let h = g.temp_for(t);
        g.block_mut(s).instrs.push(Instr::assign(h, t));
        g.block_mut(e).instrs.push(Instr::assign(x, h));
        g.block_mut(e).instrs.push(Instr::Out(vec![x.into()]));
        assert!(!codes(&g).contains(&"L010"), "{:?}", codes(&g));
    }

    #[test]
    fn mismatched_temp_initializer_is_l011() {
        // h<a+b> := a*b violates the naming discipline.
        let (mut g, s, e, a, b, x) = skeleton();
        let h = g.temp_for(Term::binary(BinOp::Add, a, b));
        g.block_mut(s)
            .instrs
            .push(Instr::assign(h, Term::binary(BinOp::Mul, a, b)));
        g.block_mut(e).instrs.push(Instr::assign(x, h));
        g.block_mut(e).instrs.push(Instr::Out(vec![x.into()]));
        let cs = codes(&g);
        assert!(cs.contains(&"L011"), "{cs:?}");
    }

    #[test]
    fn alpha_renamed_temps_are_exempt_from_l011() {
        // Positionally-named temps (h1, h2, ...) carry no expression in
        // their name, so the naming lint cannot and must not apply.
        let (mut g, s, e, a, b, x) = skeleton();
        let h = g.pool_mut().intern_temp("h1");
        g.block_mut(s)
            .instrs
            .push(Instr::assign(h, Term::binary(BinOp::Mul, a, b)));
        g.block_mut(e).instrs.push(Instr::assign(x, h));
        g.block_mut(e).instrs.push(Instr::Out(vec![x.into()]));
        assert!(!codes(&g).contains(&"L011"));
    }
}
