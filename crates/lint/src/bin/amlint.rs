//! `amlint` — lint IR programs against the paper's invariants.
//!
//! ```sh
//! # Lint the default corpus directory:
//! cargo run --release -p am-lint --bin amlint -- programs
//!
//! # Optimize first, then lint the optimizer's output (the CI gate):
//! cargo run --release -p am-lint --bin amlint -- --optimize --corpus
//!
//! # 50 seeded random programs, machine-readable findings:
//! cargo run --release -p am-lint --bin amlint -- --synthetic 50 --jsonl findings.jsonl
//! ```
//!
//! Exit codes: 0 clean (or info-only), 1 warnings, 2 errors, 3 usage or
//! I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use am_core::global::{optimize_with, GlobalConfig};
use am_ir::dot::to_dot_with;
use am_ir::text::{parse_with_locations, SourceMap};
use am_ir::FlowGraph;
use am_lang::{compile_source, SourceKind};
use am_lint::{lint_graph, LintConfig, LintReport, Severity};
use am_trace::{export, Tracer};

struct Options {
    optimize: bool,
    provenance: bool,
    synthetic: usize,
    corpus: bool,
    jsonl: Option<PathBuf>,
    dot: Option<PathBuf>,
    trace: Option<PathBuf>,
    quiet: bool,
    inputs: Vec<PathBuf>,
}

const USAGE: &str = "usage: amlint [options] [file|dir ...]

Lints every .ir and .wl program given (directories are scanned,
non-recursively) against the paper's structural and optimality
invariants. With no inputs, --synthetic or --corpus, uses ./programs.

options:
  --optimize       run the full optimizer first and lint its output
                   (checks the guarantees of Thms 5.1-5.4 statically)
  --provenance     also re-run the optimizer with provenance recording and
                   cross-check every Eliminate record against the L101
                   redundancy analysis (L103; disagreement is an error)
  --synthetic N    also lint N deterministic seeded random programs
  --corpus         also lint the canonical 80-program random corpus
  --jsonl FILE     write all findings as JSON lines to FILE
  --dot FILE       write a Graphviz rendering of the (single) linted
                   program with nodes colored by worst finding severity
  --trace FILE     record per-analysis tracer spans as JSONL to FILE
  --quiet          suppress per-finding lines, print only the summary
  --help           this text

exit: 0 clean or info-only, 1 warnings, 2 errors, 3 usage/IO error";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        optimize: false,
        provenance: false,
        synthetic: 0,
        corpus: false,
        jsonl: None,
        dot: None,
        trace: None,
        quiet: false,
        inputs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--optimize" => opts.optimize = true,
            "--provenance" => opts.provenance = true,
            "--synthetic" => {
                opts.synthetic = value(&mut args, "--synthetic")?
                    .parse()
                    .map_err(|e| format!("--synthetic: {e}"))?;
            }
            "--corpus" => opts.corpus = true,
            "--jsonl" => opts.jsonl = Some(PathBuf::from(value(&mut args, "--jsonl")?)),
            "--dot" => opts.dot = Some(PathBuf::from(value(&mut args, "--dot")?)),
            "--trace" => opts.trace = Some(PathBuf::from(value(&mut args, "--trace")?)),
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'; --help for usage"));
            }
            path => opts.inputs.push(PathBuf::from(path)),
        }
    }
    if opts.inputs.is_empty() && opts.synthetic == 0 && !opts.corpus {
        opts.inputs.push(PathBuf::from("programs"));
    }
    Ok(opts)
}

/// A program to lint: name, graph, and (for `.ir` files) the source map
/// that lets findings cite original line/column positions.
struct Unit {
    name: String,
    graph: FlowGraph,
    srcmap: Option<SourceMap>,
}

fn load_file(path: &PathBuf) -> Result<Unit, String> {
    let kind = SourceKind::from_path(path)
        .ok_or_else(|| format!("{}: not a .ir or .wl file", path.display()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let name = path.display().to_string();
    match kind {
        SourceKind::Ir => {
            let (graph, srcmap) = parse_with_locations(&text, am_ir::text::Mode::Strict)
                .map_err(|e| format!("{name}: {e}"))?;
            Ok(Unit {
                name,
                graph,
                srcmap: Some(srcmap),
            })
        }
        _ => {
            let graph = compile_source(kind, &text).map_err(|e| format!("{name}: {e}"))?;
            Ok(Unit {
                name,
                graph,
                srcmap: None,
            })
        }
    }
}

fn collect_units(inputs: &[PathBuf]) -> Result<Vec<Unit>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let entries =
                std::fs::read_dir(input).map_err(|e| format!("{}: {e}", input.display()))?;
            for entry in entries {
                let path = entry
                    .map_err(|e| format!("{}: {e}", input.display()))?
                    .path();
                if path.is_file() && SourceKind::from_path(&path).is_some() {
                    files.push(path);
                }
            }
        } else {
            files.push(input.clone());
        }
    }
    files.sort();
    files.dedup();
    files.iter().map(load_file).collect()
}

/// Seeded random structured programs — the same seed base as `amopt
/// --synthetic`, so the two tools agree on what `synthetic/0007` means.
fn synthetic_units(count: usize) -> Vec<Unit> {
    use am_ir::random::{structured, SplitMix64, StructuredConfig};
    (0..count)
        .map(|i| {
            let mut rng = SplitMix64::new(0xA5_0000 + i as u64);
            Unit {
                name: format!("synthetic/{i:04}"),
                graph: structured(&mut rng, &StructuredConfig::default()),
                srcmap: None,
            }
        })
        .collect()
}

fn corpus_units() -> Vec<Unit> {
    am_ir::random::corpus80()
        .into_iter()
        .map(|(name, graph)| Unit {
            name: format!("corpus/{name}"),
            graph,
            srcmap: None,
        })
        .collect()
}

/// Graphviz rendering with nodes colored by their worst finding.
fn severity_dot(g: &FlowGraph, report: &LintReport) -> String {
    to_dot_with(g, |n| {
        report
            .diags
            .iter()
            .filter(|d| d.node_id == Some(n))
            .map(|d| d.severity)
            .max()
            .map(|worst| {
                let color = match worst {
                    Severity::Error => "#f4cccc",
                    Severity::Warning => "#fff2cc",
                    Severity::Info => "#d0e0f0",
                };
                format!("style=filled, fillcolor=\"{color}\"")
            })
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(3);
        }
    };
    let mut units = match collect_units(&opts.inputs) {
        Ok(u) => u,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(3);
        }
    };
    units.extend(synthetic_units(opts.synthetic));
    if opts.corpus {
        units.extend(corpus_units());
    }
    if units.is_empty() {
        eprintln!("no programs to lint; --help for usage");
        return ExitCode::from(3);
    }
    if opts.dot.is_some() && units.len() != 1 {
        eprintln!(
            "--dot needs exactly one program to render, got {}",
            units.len()
        );
        return ExitCode::from(3);
    }

    let (tracer, collector) = match &opts.trace {
        Some(_) => {
            let (t, c) = Tracer::collector();
            (t, Some(c))
        }
        None => (Tracer::disabled(), None),
    };

    let mut worst: u8 = 0;
    let mut jsonl = String::new();
    let mut totals = (0usize, 0usize, 0usize);
    for unit in &units {
        let mut graph = unit.graph.clone();
        let mut srcmap = unit.srcmap.clone();
        if opts.optimize {
            let mut span = tracer.span("lint", format!("optimize {}", unit.name));
            graph = optimize_with(
                &graph,
                &GlobalConfig {
                    tracer: tracer.clone(),
                    ..GlobalConfig::default()
                },
            )
            .program;
            // Optimization rewrites the program; original positions no
            // longer apply.
            srcmap = None;
            span.arg("nodes", graph.node_count() as i64);
        }
        let cfg = LintConfig {
            tracer: tracer.clone(),
            srcmap,
        };
        let mut report = lint_graph(&graph, &cfg);
        if opts.provenance {
            // The cross-check re-runs the optimizer itself, so it always
            // starts from the original program.
            let prov = am_lint::check_provenance(&unit.graph, None, &cfg);
            report.diags.extend(prov.diags);
        }
        totals.0 += report.errors();
        totals.1 += report.warnings();
        totals.2 += report.infos();
        worst = worst.max(report.exit_code());
        if !opts.quiet {
            for d in &report.diags {
                println!("{}: {d}", unit.name);
            }
        }
        if opts.jsonl.is_some() {
            jsonl.push_str(&report.to_jsonl(&unit.name));
        }
        if let Some(path) = &opts.dot {
            if let Err(e) = std::fs::write(path, severity_dot(&graph, &report)) {
                eprintln!("--dot {}: {e}", path.display());
                return ExitCode::from(3);
            }
        }
    }

    println!(
        "{} program(s): {} error(s), {} warning(s), {} info",
        units.len(),
        totals.0,
        totals.1,
        totals.2
    );
    if let Some(path) = &opts.jsonl {
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("--jsonl {}: {e}", path.display());
            return ExitCode::from(3);
        }
    }
    if let (Some(path), Some(collector)) = (&opts.trace, &collector) {
        let events = collector.take();
        if let Err(e) = std::fs::write(path, export::jsonl(&events)) {
            eprintln!("--trace {}: {e}", path.display());
            return ExitCode::from(3);
        }
        if !opts.quiet {
            println!(
                "trace: {} events written to {}",
                events.len(),
                path.display()
            );
        }
    }
    ExitCode::from(worst)
}
