//! Static analysis suite over `am-ir` programs: a well-formedness verifier
//! and an *optimality linter* that turns the paper's theorems into
//! machine-checkable diagnostics.
//!
//! The paper's headline results are static guarantees — expression
//! optimality (Thm 5.2), relative assignment optimality (Thm 5.3) and
//! relative temporary optimality (Thm 5.4) — but the rest of the repo only
//! checks optimizer output *dynamically* (the `am-check` interpreter
//! oracles). This crate re-runs the underlying dataflow analyses on a
//! program and reports, statically:
//!
//! * **well-formedness** (`L0xx`): CFG invariants (single entry, reachable
//!   nodes, edge consistency), temporaries read before initialization, and
//!   the `h_t` naming discipline of the initialization phase;
//! * **residual redundancy** (`L1xx`): expression computations that are
//!   still fully (error) or partially (warning) redundant — a static check
//!   of Thm 5.2 on optimizer output;
//! * **faint assignments** (`L2xx`): the backward faintness fixpoint of
//!   Sec. 3, strictly stronger than dead-code liveness — assignments whose
//!   value never reaches an `out` or branch, and temporaries the flush
//!   phase should have deleted;
//! * **temporary lifetimes** (`L3xx`): single-use temporaries that should
//!   have been reconstructed (Thm 5.4) and the peak number of
//!   simultaneously live temporaries (register pressure).
//!
//! Separately, [`check_provenance`] (`L103`) cross-checks the optimizer's
//! own `--explain` decision log against the redundancy analysis: every
//! `Eliminate` provenance record must name a site the `L101` availability
//! solver also considers must-redundant, and any disagreement is an error
//! — the decision log and the dataflow analysis implement the same paper
//! rule, so they must agree.
//!
//! Every diagnostic carries a stable code (catalogued in `docs/LINTS.md`),
//! a severity, and a location; reports render human-readable or as JSONL.
//!
//! # Examples
//!
//! ```
//! use am_ir::text::parse;
//! use am_lint::{lint_graph, LintConfig};
//!
//! // x := a+b is recomputed on a path where it is already available.
//! let g = parse(
//!     "start 1\nend 2\n\
//!      node 1 { x := a+b }\n\
//!      node 2 { y := a+b; out(x,y) }\n\
//!      edge 1 -> 2",
//! )?;
//! let report = lint_graph(&g, &LintConfig::default());
//! assert_eq!(report.errors(), 1);
//! assert!(report.diags.iter().any(|d| d.code == "L101"));
//! # Ok::<(), am_ir::text::ParseError>(())
//! ```

#![warn(missing_docs)]

mod diag;
mod faint;
mod provenance;
mod redundancy;
mod temps;
mod wellformed;

pub use diag::{Diagnostic, LintReport, LintSummary, Severity};
pub use provenance::check_provenance;

use am_dfa::PointGraph;
use am_ir::text::SourceMap;
use am_ir::{FlowGraph, Loc, NodeId, PatternUniverse};
use am_trace::Tracer;

/// Configuration of a lint run.
#[derive(Clone, Default)]
pub struct LintConfig {
    /// Trace sink: one `lint` span per analysis, with a findings count.
    /// Disabled (a no-op) by default.
    pub tracer: Tracer,
    /// Source positions of the program's instructions, when it was parsed
    /// from text via
    /// [`parse_with_locations`](am_ir::text::parse_with_locations);
    /// findings then cite the original line/column.
    pub srcmap: Option<SourceMap>,
}

/// Shared per-run context handed to the analyses.
pub(crate) struct Ctx<'a> {
    pub g: &'a FlowGraph,
    srcmap: Option<&'a SourceMap>,
}

impl Ctx<'_> {
    /// An instruction-scoped finding.
    pub fn at(
        &self,
        code: &'static str,
        severity: Severity,
        loc: Loc,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message,
            node: Some(self.g.label(loc.node).to_owned()),
            instr: Some(loc.index),
            node_id: Some(loc.node),
            pos: self.srcmap.and_then(|m| m.get(loc.node, loc.index)),
        }
    }

    /// A node-scoped finding.
    pub fn at_node(
        &self,
        code: &'static str,
        severity: Severity,
        node: NodeId,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message,
            node: Some(self.g.label(node).to_owned()),
            instr: None,
            node_id: Some(node),
            pos: None,
        }
    }
}

/// Runs the full lint suite on `g`.
///
/// Structural verification (`L001`–`L007`) runs first; when it reports any
/// error the dataflow-based analyses are skipped, since their point graphs
/// are only meaningful over well-formed flow graphs.
pub fn lint_graph(g: &FlowGraph, cfg: &LintConfig) -> LintReport {
    let ctx = Ctx {
        g,
        srcmap: cfg.srcmap.as_ref(),
    };
    let mut diags = Vec::new();

    let run = |name: &str, diags: &mut Vec<Diagnostic>, f: &mut dyn FnMut(&mut Vec<Diagnostic>)| {
        let mut span = cfg.tracer.span("lint", name.to_owned());
        let before = diags.len();
        f(diags);
        span.arg("findings", (diags.len() - before) as i64);
    };

    run("structure", &mut diags, &mut |d| {
        wellformed::check_structure(&ctx, d)
    });
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return LintReport { diags };
    }

    let pg = PointGraph::build(g);
    let universe = PatternUniverse::collect(g);
    run("defuse", &mut diags, &mut |d| {
        wellformed::check_defuse(&ctx, &pg, d)
    });
    run("redundancy", &mut diags, &mut |d| {
        redundancy::check(&ctx, &pg, &universe, d)
    });
    run("faint", &mut diags, &mut |d| faint::check(&ctx, &pg, d));
    run("temps", &mut diags, &mut |d| {
        temps::check(&ctx, &pg, &universe, d)
    });
    LintReport { diags }
}
