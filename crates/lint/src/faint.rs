//! Faint-assignment detection: the backward faintness fixpoint of Sec. 3,
//! strictly stronger than dead-code liveness. An assignment is faint when
//! no path from it reaches an *observation* of the assigned value — an
//! `out`, a branch condition, or an assignment whose own target is (still)
//! strongly live.

use am_bitset::BitSet;
use am_dfa::classic::strongly_live_variables;
use am_dfa::PointGraph;
use am_ir::Instr;

use crate::diag::{Diagnostic, Severity};
use crate::Ctx;

/// `L201` (error): a temporary that is initialized but never read anywhere
/// in the program — the flush phase keeps only usable temporaries
/// (X-USABLE, Table 3), so an unread temporary is a broken translation.
///
/// `L202` (warning): any other faint assignment. These can occur in
/// legitimate *source* programs (dead stores the user wrote), so they do
/// not fail the build; the optimizer is not required to remove them either
/// — assignment sinking eliminates only what the paper's faintness
/// analysis justifies, and `am-lint` reports what is left.
pub(crate) fn check(ctx: &Ctx<'_>, pg: &PointGraph<'_>, out: &mut Vec<Diagnostic>) {
    let g = ctx.g;
    let pool = g.pool();
    let strong = strongly_live_variables(pg);

    // Which variables are read by any instruction at all.
    let mut read = BitSet::new(pool.len());
    for point in pg.points() {
        if let Some(instr) = pg.instr(point) {
            instr.for_each_use(|v| {
                read.insert(v.index());
            });
        }
    }

    for point in pg.points() {
        let Some(Instr::Assign { lhs, rhs }) = pg.instr(point) else {
            continue;
        };
        if strong.after[point.index()].contains(lhs.index()) {
            continue;
        }
        let loc = pg.loc(point).expect("instruction points carry locations");
        if pool.is_temp(*lhs) && !read.contains(lhs.index()) {
            out.push(ctx.at(
                "L201",
                Severity::Error,
                loc,
                format!(
                    "temporary '{}' is initialized but never read \
                     (flush keeps only usable temporaries, Table 3)",
                    pool.name(*lhs)
                ),
            ));
        } else {
            out.push(ctx.at(
                "L202",
                Severity::Warning,
                loc,
                format!(
                    "assignment '{} := {}' is faint: its value never \
                     reaches an out or branch on any path",
                    pool.name(*lhs),
                    rhs.display(pool)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use am_ir::text::parse;
    use am_ir::{BinOp, FlowGraph, Instr, Term};

    use crate::{lint_graph, LintConfig};

    fn codes(g: &FlowGraph) -> Vec<&'static str> {
        lint_graph(g, &LintConfig::default())
            .diags
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn observed_assignments_are_clean() {
        let g =
            parse("start s\nend e\nnode s { x := a+b; y := x }\nnode e { out(y) }\nedge s -> e")
                .unwrap();
        assert!(codes(&g).is_empty(), "{:?}", codes(&g));
    }

    #[test]
    fn faint_chain_is_flagged_even_though_classically_live() {
        // a := 1 is classically live (b := a reads it) but the whole chain
        // is unread: both assignments are faint.
        let g = parse("start s\nend e\nnode s { a := 1; b := a }\nnode e { out(c) }\nedge s -> e")
            .unwrap();
        assert_eq!(codes(&g), vec!["L202", "L202"]);
    }

    #[test]
    fn unread_temp_is_l201() {
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, e);
        let a = g.pool_mut().intern("a");
        let b = g.pool_mut().intern("b");
        let t = Term::binary(BinOp::Add, a, b);
        let h = g.temp_for(t);
        g.block_mut(s).instrs.push(Instr::assign(h, t));
        g.block_mut(e).instrs.push(Instr::Out(vec![a.into()]));
        assert_eq!(codes(&g), vec!["L201"]);
    }

    #[test]
    fn branch_uses_keep_values_alive() {
        let g = parse(
            "start s\nend e\n\
             node s { x := a+b; branch x > 0 }\n\
             node l { skip }\nnode r { skip }\n\
             node e { out(1) }\n\
             edge s -> l, r\nedge l -> e\nedge r -> e",
        )
        .unwrap();
        assert!(codes(&g).is_empty(), "{:?}", codes(&g));
    }
}
