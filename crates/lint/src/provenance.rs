//! `L103`: cross-check of the optimizer's own justifications against the
//! lint suite's redundancy analysis.
//!
//! `amopt --explain` produces one [`am_obs::ProvRecord`] per
//! transformation; an `Eliminate` record claims its site was
//! *must-redundant* — the eliminated right-hand side available on every
//! incoming path when control reaches the occurrence. That is exactly the
//! condition `L101` (see [`crate::lint_graph`]) checks with the classic
//! availability solver. This module re-runs the optimizer with provenance
//! recording and replays every `Eliminate` record against the snapshot its
//! coordinates refer to: a record naming a site the availability analysis
//! does *not* consider must-redundant means the decision log and the
//! dataflow analysis disagree about the same paper rule — one of them is
//! wrong, and either way it is an error.
//!
//! An `Eliminate` record of motion round `r` refers to the program at the
//! *start* of round `r` (the `MotionRound(r-1)` snapshot; `Init` for round
//! 1) — rounds collect all redundant sites before removing any.

use am_core::global::{optimize_hooked, GlobalConfig, PhaseId};
use am_dfa::classic::available_expressions;
use am_dfa::PointGraph;
use am_ir::{FlowGraph, Instr, NodeId, PatternUniverse};
use am_obs::{ProvKind, ProvRecord, ProvRecorder};

use crate::diag::{Diagnostic, LintReport, Severity};
use crate::LintConfig;

fn find_node(g: &FlowGraph, label: &str) -> Option<NodeId> {
    g.nodes().find(|&n| g.label(n) == label)
}

/// Runs the optimizer on `g` with provenance recording enabled and checks
/// every `Eliminate` record against the redundancy analysis of the
/// snapshot it refers to (`L103`, error on disagreement or unlocatable
/// coordinates). Non-`Eliminate` records assert motion rather than store
/// properties and are not availability claims, so they are not checked
/// here.
pub fn check_provenance(
    g: &FlowGraph,
    max_motion_rounds: Option<usize>,
    cfg: &LintConfig,
) -> LintReport {
    let mut span = cfg.tracer.span("lint", "provenance");
    let recorder = ProvRecorder::enabled();
    let mut snapshots: Vec<(PhaseId, FlowGraph)> = Vec::new();
    let global = GlobalConfig {
        max_motion_rounds,
        keep_snapshots: false,
        tracer: cfg.tracer.clone(),
        recorder: recorder.clone(),
        ..GlobalConfig::default()
    };
    optimize_hooked(g, &global, &mut |phase, prog| {
        snapshots.push((phase, prog.clone()));
    });
    let records = recorder.take();

    let mut diags = Vec::new();
    let mut rounds: Vec<u32> = records
        .iter()
        .filter(|r| r.kind == ProvKind::Eliminate)
        .map(|r| r.round)
        .collect();
    rounds.sort_unstable();
    rounds.dedup();

    let mut checked = 0usize;
    for round in rounds {
        let pre_phase = if round <= 1 {
            PhaseId::Init
        } else {
            PhaseId::MotionRound(round as usize - 1)
        };
        let snap = snapshots
            .iter()
            .find(|(p, _)| *p == pre_phase)
            .map(|(_, s)| s);
        let round_records: Vec<&ProvRecord> = records
            .iter()
            .filter(|r| r.kind == ProvKind::Eliminate && r.round == round)
            .collect();
        let Some(snap) = snap else {
            for r in &round_records {
                diags.push(unlocatable(r, "no snapshot for its round"));
            }
            continue;
        };
        checked += check_round(snap, &round_records, &mut diags);
    }
    span.arg("checked", checked as i64)
        .arg("findings", diags.len() as i64);
    LintReport { diags }
}

/// Cross-checks one round's `Eliminate` records against the availability
/// solution of its pre-round snapshot, returning how many sites carried a
/// checkable (nontrivial-rhs) claim.
fn check_round(snap: &FlowGraph, records: &[&ProvRecord], diags: &mut Vec<Diagnostic>) -> usize {
    let pg = PointGraph::build(snap);
    let universe = PatternUniverse::collect(snap);
    let avail = available_expressions(&pg, &universe);
    let pool = snap.pool();
    let mut checked = 0usize;
    for r in records {
        let located = find_node(snap, &r.node).and_then(|node| {
            let index = r.index? as usize;
            let instr = snap.block(node).instrs.get(index)?;
            (instr.display(pool) == r.instr).then_some((node, index, instr))
        });
        let Some((node, index, instr)) = located else {
            diags.push(unlocatable(
                r,
                "its coordinates do not name that instruction in the snapshot",
            ));
            continue;
        };
        let Instr::Assign { rhs, .. } = instr else {
            diags.push(unlocatable(r, "its coordinates name a non-assignment"));
            continue;
        };
        // Copies (`x := y`) are not expression computations; L101 has no
        // availability claim about them, so there is nothing to
        // cross-check.
        if !rhs.is_nontrivial() {
            continue;
        }
        checked += 1;
        let i = universe
            .expr_id(rhs)
            .expect("universe collected from this snapshot");
        let point = pg
            .points()
            .find(|&p| {
                pg.loc(p)
                    .is_some_and(|l| l.node == node && l.index == index)
            })
            .expect("located instructions have points");
        if !avail.before[point.index()].contains(i) {
            diags.push(Diagnostic {
                code: "L103",
                severity: Severity::Error,
                message: format!(
                    "round {} eliminated '{}' but '{}' is not available on \
                     every incoming path at that site — the provenance log \
                     and the L101 redundancy analysis disagree",
                    r.round,
                    r.instr,
                    rhs.display(pool)
                ),
                node: Some(r.node.clone()),
                instr: Some(index),
                node_id: None,
                pos: None,
            });
        }
    }
    checked
}

fn unlocatable(r: &ProvRecord, why: &str) -> Diagnostic {
    Diagnostic {
        code: "L103",
        severity: Severity::Error,
        message: format!(
            "round {} Eliminate record for '{}' cannot be cross-checked: {why}",
            r.round, r.instr
        ),
        node: Some(r.node.clone()),
        instr: r.index.map(|i| i as usize),
        node_id: None,
        pos: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::parse;

    #[test]
    fn running_example_provenance_agrees_with_l101() {
        let g = parse(
            "start 1\nend 4\nnode 1 { y := c+d }\nnode 2 { branch x+z > y+i }\nnode 3 { y := c+d; x := y+z; i := i+x }\nnode 4 { x := y+z; x := c+d; out(i,x,y) }\nedge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .unwrap();
        let report = check_provenance(&g, None, &LintConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn corpus_provenance_agrees_with_l101() {
        for (name, g) in am_ir::random::corpus80().into_iter().take(20) {
            let report = check_provenance(&g, None, &LintConfig::default());
            assert!(report.is_clean(), "{name}: {report}");
        }
    }

    fn fake_record(node: &str, index: u32, instr: &str) -> ProvRecord {
        ProvRecord {
            kind: ProvKind::Eliminate,
            phase: "motion",
            round: 1,
            node: node.to_owned(),
            index: Some(index),
            instr: instr.to_owned(),
            new_instr: None,
            pattern: None,
            instr_id: None,
            justification: "doctored".to_owned(),
        }
    }

    #[test]
    fn a_doctored_record_naming_a_non_redundant_site_is_flagged() {
        // `y := a+b` in node s is the *first* computation of a+b: no
        // honest Eliminate record can name it.
        let g =
            parse("start s\nend e\nnode s { y := a+b; out(y) }\nnode e { }\nedge s -> e").unwrap();
        let r = fake_record("s", 0, "y := a+b");
        let mut diags = Vec::new();
        let checked = check_round(&g, &[&r], &mut diags);
        assert_eq!(checked, 1);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "L103");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(
            diags[0].message.contains("disagree"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn a_record_with_bogus_coordinates_is_flagged_as_unlocatable() {
        let g =
            parse("start s\nend e\nnode s { y := a+b; out(y) }\nnode e { }\nedge s -> e").unwrap();
        let r = fake_record("s", 0, "y := c+d"); // text mismatch
        let mut diags = Vec::new();
        check_round(&g, &[&r], &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "L103");
        assert!(
            diags[0].message.contains("cannot be cross-checked"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn an_honest_record_on_a_redundant_site_is_certified() {
        let g = parse(
            "start s\nend e\nnode s { x := a+b }\nnode e { y := a+b; out(x,y) }\nedge s -> e",
        )
        .unwrap();
        let r = fake_record("e", 0, "y := a+b");
        let mut diags = Vec::new();
        let checked = check_round(&g, &[&r], &mut diags);
        assert_eq!(checked, 1);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
