//! Temporary-lifetime lints: single-use temporaries that relative
//! temporary optimality (Thm 5.4) says should have been reconstructed, and
//! the peak number of simultaneously live temporaries — the register
//! pressure the second motion round exists to bound.

use am_dfa::classic::{available_expressions, live_variables};
use am_dfa::PointGraph;
use am_ir::{Instr, Operand, PatternUniverse, Term, Var};

use crate::diag::{Diagnostic, Severity};
use crate::Ctx;

/// `L301` (warning): a temporary read exactly once, by a trivial copy
/// `x := h`, whose defining expression is available at that lone use — the
/// flush phase's reconstruction rule (Thm 5.4) would replace the copy with
/// the expression and delete the temporary, shortening its live range to
/// zero. `L302` (info): the peak count of simultaneously live temporaries.
pub(crate) fn check(
    ctx: &Ctx<'_>,
    pg: &PointGraph<'_>,
    universe: &PatternUniverse,
    out: &mut Vec<Diagnostic>,
) {
    let g = ctx.g;
    let pool = g.pool();
    let temps: Vec<Var> = pool.iter().filter(|&v| pool.is_temp(v)).collect();
    if temps.is_empty() {
        return;
    }

    // Reads per temporary and the (unique, under the initialization
    // discipline) non-trivial expression each temporary is bound to.
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); pool.len()];
    let mut bound: Vec<Option<Term>> = vec![None; pool.len()];
    for point in pg.points() {
        let Some(instr) = pg.instr(point) else {
            continue;
        };
        instr.for_each_use(|v| {
            if pool.is_temp(v) && reads[v.index()].last() != Some(&point.index()) {
                reads[v.index()].push(point.index());
            }
        });
        if let Instr::Assign { lhs, rhs } = instr {
            if pool.is_temp(*lhs) && rhs.is_nontrivial() {
                bound[lhs.index()] = Some(*rhs);
            }
        }
    }

    let avail = available_expressions(pg, universe);
    for &h in &temps {
        let &[p] = &reads[h.index()][..] else {
            continue;
        };
        let point = am_dfa::PointId(p as u32);
        let Some(Instr::Assign { lhs, rhs }) = pg.instr(point) else {
            continue;
        };
        // Only a trivial copy `x := h` is a reconstruction candidate; a use
        // inside a larger expression or an out/branch needs the value.
        if *rhs != Term::Operand(Operand::Var(h)) {
            continue;
        }
        let Some(t) = bound[h.index()] else {
            continue;
        };
        let Some(i) = universe.expr_id(&t) else {
            continue;
        };
        if avail.before[p].contains(i) {
            let loc = pg.loc(point).expect("instruction points carry locations");
            out.push(ctx.at(
                "L301",
                Severity::Warning,
                loc,
                format!(
                    "single-use temporary '{}' should be reconstructed: \
                     '{}' is available at its only use '{} := {}' (Thm 5.4)",
                    pool.name(h),
                    t.display(pool),
                    pool.name(*lhs),
                    rhs.display(pool)
                ),
            ));
        }
    }

    // Peak pressure: maximum number of temporaries live at any point.
    let live = live_variables(pg);
    let mut peak = 0usize;
    let mut at = pg.entry();
    for point in pg.points() {
        let n = temps
            .iter()
            .filter(|v| live.before[point.index()].contains(v.index()))
            .count();
        if n > peak {
            peak = n;
            at = point;
        }
    }
    if peak > 0 {
        out.push(ctx.at_node(
            "L302",
            Severity::Info,
            pg.node(at),
            format!(
                "peak temporary pressure: {peak} simultaneously live \
                 temporar{} (first reached in this node)",
                if peak == 1 { "y" } else { "ies" }
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use am_ir::{BinOp, FlowGraph, Instr, NodeId, Term, Var};

    use crate::{lint_graph, LintConfig, Severity};

    fn codes(g: &FlowGraph) -> Vec<&'static str> {
        lint_graph(g, &LintConfig::default())
            .diags
            .iter()
            .map(|d| d.code)
            .collect()
    }

    fn skeleton() -> (FlowGraph, NodeId, NodeId, Var, Var, Var) {
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, e);
        let a = g.pool_mut().intern("a");
        let b = g.pool_mut().intern("b");
        let x = g.pool_mut().intern("x");
        (g, s, e, a, b, x)
    }

    #[test]
    fn reconstructible_single_use_temp_is_l301() {
        // h := a+b; x := h with a+b still available at the copy: flush
        // should have rewritten this to x := a+b and dropped h.
        let (mut g, s, e, a, b, x) = skeleton();
        let t = Term::binary(BinOp::Add, a, b);
        let h = g.temp_for(t);
        g.block_mut(s).instrs.push(Instr::assign(h, t));
        g.block_mut(e).instrs.push(Instr::assign(x, h));
        g.block_mut(e).instrs.push(Instr::Out(vec![x.into()]));
        let cs = codes(&g);
        assert!(cs.contains(&"L301"), "{cs:?}");
    }

    #[test]
    fn temp_bridging_a_kill_is_not_flagged() {
        // a := 1 between initialization and use: the expression is NOT
        // available at the copy, so the temporary is doing real work.
        let (mut g, s, e, a, b, x) = skeleton();
        let t = Term::binary(BinOp::Add, a, b);
        let h = g.temp_for(t);
        g.block_mut(s).instrs.push(Instr::assign(h, t));
        g.block_mut(s).instrs.push(Instr::assign(a, 1));
        g.block_mut(e).instrs.push(Instr::assign(x, h));
        g.block_mut(e)
            .instrs
            .push(Instr::Out(vec![x.into(), a.into()]));
        let cs = codes(&g);
        assert!(!cs.contains(&"L301"), "{cs:?}");
    }

    #[test]
    fn multi_use_temp_is_not_flagged() {
        let (mut g, s, e, a, b, x) = skeleton();
        let t = Term::binary(BinOp::Add, a, b);
        let h = g.temp_for(t);
        let y = g.pool_mut().intern("y");
        g.block_mut(s).instrs.push(Instr::assign(h, t));
        g.block_mut(s).instrs.push(Instr::assign(x, h));
        g.block_mut(e).instrs.push(Instr::assign(y, h));
        g.block_mut(e)
            .instrs
            .push(Instr::Out(vec![x.into(), y.into()]));
        let cs = codes(&g);
        assert!(!cs.contains(&"L301"), "{cs:?}");
    }

    #[test]
    fn pressure_is_reported_as_info() {
        let (mut g, s, e, a, b, x) = skeleton();
        let t1 = Term::binary(BinOp::Add, a, b);
        let t2 = Term::binary(BinOp::Mul, a, b);
        let h1 = g.temp_for(t1);
        let h2 = g.temp_for(t2);
        g.block_mut(s).instrs.push(Instr::assign(h1, t1));
        g.block_mut(s).instrs.push(Instr::assign(h2, t2));
        g.block_mut(s).instrs.push(Instr::assign(a, 1));
        g.block_mut(e).instrs.push(Instr::assign(x, h1));
        g.block_mut(e)
            .instrs
            .push(Instr::Out(vec![x.into(), h2.into()]));
        let report = lint_graph(&g, &LintConfig::default());
        let l302 = report
            .diags
            .iter()
            .find(|d| d.code == "L302")
            .expect("pressure reported");
        assert_eq!(l302.severity, Severity::Info);
        assert!(l302.message.contains("2 simultaneously live"));
        // Info findings never affect the exit code.
        assert!(report.errors() == 0);
    }

    #[test]
    fn programs_without_temps_report_nothing_here() {
        let g = am_ir::text::parse(
            "start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e",
        )
        .unwrap();
        assert!(codes(&g).is_empty(), "{:?}", codes(&g));
    }
}
