//! Residual redundancy: re-solves availability and partial availability on
//! a program and flags expression computations the optimizer should have
//! eliminated — a static check of expression optimality (Thm 5.2).

use am_dfa::classic::{available_expressions, partially_available_expressions};
use am_dfa::PointGraph;
use am_ir::{Instr, PatternUniverse};

use crate::diag::{Diagnostic, Severity};
use crate::Ctx;

/// `L101` (full redundancy, error) and `L102` (partial redundancy,
/// warning).
///
/// Only assignment right-hand sides are checked: branch conditions keep
/// their operand terms in place by design (the top-level comparison is
/// control and never moves), and on the safe/lazy strategies partial
/// redundancies whose elimination would not be down-safe legitimately
/// survive — hence the severity split.
pub(crate) fn check(
    ctx: &Ctx<'_>,
    pg: &PointGraph<'_>,
    universe: &PatternUniverse,
    out: &mut Vec<Diagnostic>,
) {
    if universe.expr_count() == 0 {
        return;
    }
    let pool = ctx.g.pool();
    let avail = available_expressions(pg, universe);
    let pavail = partially_available_expressions(pg, universe);
    for point in pg.points() {
        let Some(Instr::Assign { rhs, .. }) = pg.instr(point) else {
            continue;
        };
        if !rhs.is_nontrivial() {
            continue;
        }
        let i = universe
            .expr_id(rhs)
            .expect("universe collected from this graph");
        let loc = pg.loc(point).expect("instruction points carry locations");
        if avail.before[point.index()].contains(i) {
            out.push(ctx.at(
                "L101",
                Severity::Error,
                loc,
                format!(
                    "'{}' is recomputed although it is available on every \
                     incoming path (fully redundant; Thm 5.2 eliminates these)",
                    rhs.display(pool)
                ),
            ));
        } else if pavail.before[point.index()].contains(i) {
            out.push(ctx.at(
                "L102",
                Severity::Warning,
                loc,
                format!(
                    "'{}' is recomputed although it is available on some \
                     incoming path (partially redundant)",
                    rhs.display(pool)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use am_ir::text::parse;
    use am_ir::FlowGraph;

    use crate::{lint_graph, LintConfig};

    fn codes(g: &FlowGraph) -> Vec<&'static str> {
        lint_graph(g, &LintConfig::default())
            .diags
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn straight_line_recompute_is_l101() {
        let g = parse(
            "start s\nend e\n\
             node s { x := a+b }\n\
             node e { y := a+b; out(x,y) }\n\
             edge s -> e",
        )
        .unwrap();
        assert_eq!(codes(&g), vec!["L101"]);
    }

    #[test]
    fn one_armed_recompute_is_l102() {
        // a+b is computed on the left arm only, then recomputed at the join.
        let g = parse(
            "start s\nend e\n\
             node s { branch p > 0 }\n\
             node l { x := a+b }\n\
             node r { x := 1 }\n\
             node e { y := a+b; out(x,y) }\n\
             edge s -> l, r\nedge l -> e\nedge r -> e",
        )
        .unwrap();
        assert_eq!(codes(&g), vec!["L102"]);
    }

    #[test]
    fn killed_operand_clears_the_redundancy() {
        let g = parse(
            "start s\nend e\n\
             node s { x := a+b; a := 1 }\n\
             node e { y := a+b; out(x,y) }\n\
             edge s -> e",
        )
        .unwrap();
        assert!(codes(&g).is_empty(), "{:?}", codes(&g));
    }

    #[test]
    fn branch_condition_occurrences_are_not_flagged() {
        // The branch re-evaluates a+b, but control conditions never move,
        // so this must stay clean.
        let g = parse(
            "start s\nend e\n\
             node s { x := a+b; branch a+b > 0 }\n\
             node l { skip }\nnode r { skip }\n\
             node e { out(x) }\n\
             edge s -> l, r\nedge l -> e\nedge r -> e",
        )
        .unwrap();
        assert!(codes(&g).is_empty(), "{:?}", codes(&g));
    }

    #[test]
    fn self_kill_recompute_is_not_redundant() {
        // x := x+1 twice: the first computation kills x+1 itself.
        let g = parse(
            "start s\nend e\n\
             node s { x := x+1 }\n\
             node e { x := x+1; out(x) }\n\
             edge s -> e",
        )
        .unwrap();
        assert!(codes(&g).is_empty(), "{:?}", codes(&g));
    }
}
