//! The structured diagnostics model: severities, stable codes, locations,
//! and human / JSONL rendering.

use std::fmt;

use am_ir::text::Pos;
use am_ir::NodeId;

/// How serious a finding is.
///
/// Ordered `Info < Warning < Error` so `max` picks the worst.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory metric or observation; never affects the exit code.
    Info,
    /// A missed-optimality or suspicious-code finding: worth a look, but
    /// legitimate programs can produce it.
    Warning,
    /// A violated invariant: the program breaks a well-formedness rule or a
    /// guarantee the optimizer is required to establish (Thms 5.1–5.4).
    Error,
}

impl Severity {
    /// Lowercase name, as used in JSONL and human output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single lint finding.
///
/// `code` is stable across releases (documented in `docs/LINTS.md`); the
/// location fields are optional because some findings are about the whole
/// graph, some about a node, and some about one instruction.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `"L101"`.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Label of the node the finding is about, when node-scoped.
    pub node: Option<String>,
    /// Instruction index within the node, when instruction-scoped.
    pub instr: Option<usize>,
    /// Node id in the linted graph, for tooling overlays (dot coloring).
    pub node_id: Option<NodeId>,
    /// Source position, when the program was parsed from text with a
    /// [`SourceMap`](am_ir::text::SourceMap).
    pub pos: Option<Pos>,
}

impl Diagnostic {
    /// A graph-scoped finding with no particular location.
    pub fn global(code: &'static str, severity: Severity, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message,
            node: None,
            instr: None,
            node_id: None,
            pos: None,
        }
    }

    /// Renders the location part, e.g. `"node 3, instr 1 (line 4:7)"`.
    fn location(&self) -> Option<String> {
        let mut out = String::new();
        if let Some(node) = &self.node {
            out.push_str("node ");
            out.push_str(node);
            if let Some(i) = self.instr {
                out.push_str(&format!(", instr {i}"));
            }
        }
        if let Some(p) = self.pos {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!("(line {p})"));
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(loc) = self.location() {
            write!(f, " {loc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// All findings of one [`lint_graph`](crate::lint_graph) run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Findings in analysis order (structural first, then dataflow lints).
    pub diags: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == s).count()
    }

    /// The worst severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// Whether nothing at all was flagged.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// The process exit code convention of `amlint`: 0 clean (or info
    /// only), 1 warnings, 2 errors.
    pub fn exit_code(&self) -> u8 {
        match self.worst() {
            Some(Severity::Error) => 2,
            Some(Severity::Warning) => 1,
            _ => 0,
        }
    }

    /// One JSONL line per finding, each tagged with the program name.
    pub fn to_jsonl(&self, program: &str) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str("{\"program\":");
            am_trace::json::write_str(&mut out, program);
            out.push_str(",\"code\":");
            am_trace::json::write_str(&mut out, d.code);
            out.push_str(",\"severity\":");
            am_trace::json::write_str(&mut out, d.severity.name());
            if let Some(node) = &d.node {
                out.push_str(",\"node\":");
                am_trace::json::write_str(&mut out, node);
            }
            if let Some(i) = d.instr {
                out.push_str(&format!(",\"instr\":{i}"));
            }
            if let Some(p) = d.pos {
                out.push_str(&format!(",\"line\":{},\"col\":{}", p.line, p.col));
            }
            out.push_str(",\"message\":");
            am_trace::json::write_str(&mut out, &d.message);
            out.push_str("}\n");
        }
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} info",
            self.errors(),
            self.warnings(),
            self.infos()
        )
    }
}

/// A compact, cache-friendly summary of a [`LintReport`] — what the batch
/// pipeline stores per job (the full report borrows nothing, but keeping
/// only counts and pre-rendered lines keeps `CachedResult` small and
/// `Send + Sync` trivially).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Info-severity findings.
    pub infos: usize,
    /// Rendered diagnostic lines (human form).
    pub lines: Vec<String>,
}

impl LintSummary {
    /// Whether any error-severity finding was recorded.
    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }

    /// Whether anything at all was recorded.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0 && self.infos == 0
    }
}

impl From<&LintReport> for LintSummary {
    fn from(r: &LintReport) -> LintSummary {
        LintSummary {
            errors: r.errors(),
            warnings: r.warnings(),
            infos: r.infos(),
            lines: r.diags.iter().map(|d| d.to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            diags: vec![
                Diagnostic::global("L900", Severity::Info, "just saying".into()),
                Diagnostic {
                    code: "L901",
                    severity: Severity::Error,
                    message: "bad \"thing\"".into(),
                    node: Some("3".into()),
                    instr: Some(1),
                    node_id: None,
                    pos: Some(Pos::new(4, 7)),
                },
            ],
        }
    }

    #[test]
    fn counts_and_exit_codes() {
        let r = sample();
        assert_eq!((r.errors(), r.warnings(), r.infos()), (1, 0, 1));
        assert_eq!(r.worst(), Some(Severity::Error));
        assert_eq!(r.exit_code(), 2);
        assert!(!r.is_clean());
        let empty = LintReport::default();
        assert_eq!(empty.exit_code(), 0);
        assert!(empty.is_clean());
        let info_only = LintReport {
            diags: vec![Diagnostic::global("L1", Severity::Info, "m".into())],
        };
        assert_eq!(info_only.exit_code(), 0);
    }

    #[test]
    fn human_rendering_includes_code_and_location() {
        let r = sample();
        let line = r.diags[1].to_string();
        assert_eq!(
            line,
            "error[L901] node 3, instr 1 (line 4:7): bad \"thing\""
        );
    }

    #[test]
    fn jsonl_is_parseable_and_escaped() {
        let r = sample();
        let out = r.to_jsonl("demo/x");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = am_trace::json::parse(line).expect("valid json");
            assert_eq!(v.get("program").and_then(|p| p.as_str()), Some("demo/x"));
        }
        let second = am_trace::json::parse(lines[1]).unwrap();
        assert_eq!(second.get("code").and_then(|c| c.as_str()), Some("L901"));
        assert_eq!(second.get("line").and_then(|l| l.as_i64()), Some(4));
        assert_eq!(
            second.get("message").and_then(|m| m.as_str()),
            Some("bad \"thing\"")
        );
    }

    #[test]
    fn summary_mirrors_report() {
        let r = sample();
        let s = LintSummary::from(&r);
        assert_eq!(s.errors, 1);
        assert_eq!(s.lines.len(), 2);
        assert!(s.has_errors());
        assert!(!s.is_clean());
    }
}
