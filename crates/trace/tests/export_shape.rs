//! Exporter shape tests: the Chrome-trace output is pinned against a golden
//! file (byte-for-byte, over a fixed synthetic event stream), and the JSONL
//! format round-trips through a real tracer + collector.

use am_trace::event::{Event, EventKind};
use am_trace::export::{chrome_trace, jsonl, parse_jsonl_line, summary_line, summary_tree};
use am_trace::json;
use am_trace::Tracer;

/// A fixed event stream shaped like a tiny real run: one optimize span with
/// nested phases, analysis counters, a cache counter and an instant marker.
fn fixture() -> Vec<Event> {
    let ev = |name: &str, cat: &str, kind, ts, tid, depth, args: &[(&str, i64)]| Event {
        name: name.into(),
        cat: cat.into(),
        kind,
        ts_micros: ts,
        tid,
        depth,
        args: args.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
    };
    vec![
        ev(
            "split",
            "phase",
            EventKind::Span { dur_micros: 7 },
            2,
            1,
            1,
            &[("edges_split", 1)],
        ),
        ev(
            "init",
            "phase",
            EventKind::Span { dur_micros: 11 },
            10,
            1,
            1,
            &[],
        ),
        ev(
            "rae",
            "analysis",
            EventKind::Counter,
            25,
            1,
            2,
            &[
                ("iterations", 12),
                ("worklist_pushes", 12),
                ("max_worklist_len", 5),
            ],
        ),
        ev(
            "round 1",
            "round",
            EventKind::Span { dur_micros: 30 },
            22,
            1,
            1,
            &[("eliminated", 2), ("inserted", 1), ("removed", 1)],
        ),
        ev(
            "flush",
            "phase",
            EventKind::Span { dur_micros: 9 },
            55,
            1,
            1,
            &[],
        ),
        ev(
            "optimize",
            "phase",
            EventKind::Span { dur_micros: 70 },
            1,
            1,
            0,
            &[
                ("nodes", 6),
                ("instrs", 14),
                ("iterations", 12),
                ("rounds", 1),
            ],
        ),
        ev("done", "meta", EventKind::Instant, 72, 1, 0, &[]),
    ]
}

#[test]
fn chrome_trace_matches_golden_file() {
    let rendered = chrome_trace(&fixture());
    let golden = include_str!("golden/chrome_shape.json");
    assert_eq!(
        rendered, golden,
        "Chrome trace shape drifted from tests/golden/chrome_shape.json; \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn chrome_trace_is_loadable_json() {
    let rendered = chrome_trace(&fixture());
    let parsed = json::parse(&rendered).expect("chrome trace must be valid JSON");
    let items = parsed.as_arr().expect("top level must be an array");
    assert_eq!(items.len(), fixture().len());
    for item in items {
        // The fields chrome://tracing requires on every event.
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(item.get(key).is_some(), "missing {key:?} in {item:?}");
        }
        if item.get("ph").unwrap().as_str() == Some("X") {
            assert!(item.get("dur").is_some(), "complete event without dur");
        }
    }
}

#[test]
fn jsonl_round_trips_through_a_real_tracer() {
    let (tracer, collector) = Tracer::collector();
    {
        let mut optimize = tracer.span("phase", "optimize");
        optimize.arg("nodes", 6).arg("iterations", 12);
        {
            let _init = tracer.span("phase", "init");
        }
        tracer.counter(
            "analysis",
            "rae",
            &[("iterations", 12), ("worklist_pushes", 12)],
        );
        tracer.instant("meta", "done");
    }
    let events = collector.take();
    assert_eq!(events.len(), 4);

    let text = jsonl(&events);
    let parsed: Vec<Event> = text
        .lines()
        .map(|line| parse_jsonl_line(line).expect("every emitted line parses"))
        .collect();
    assert_eq!(parsed, events, "JSONL must round-trip losslessly");
}

#[test]
fn summary_exporters_cover_the_fixture() {
    let events = fixture();
    let tree = summary_tree(&events);
    assert!(tree.contains("optimize [phase]"), "{tree}");
    assert!(tree.contains("rae: 1 solves, 12 iterations"), "{tree}");
    let line = summary_line(&events);
    assert!(line.contains("7 events"), "{line}");
    assert!(line.contains("12 iterations"), "{line}");
}
