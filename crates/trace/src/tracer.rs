//! The producer handle: [`Tracer`] and its RAII [`Span`] guard.
//!
//! A `Tracer` is a cheap, cloneable handle that every instrumented layer
//! receives (optimizer config, pipeline config, campaign config). The
//! disabled tracer carries no sink at all: `span()` returns a guard that
//! still measures wall time (callers use the returned [`Duration`] for
//! their own reporting, e.g. `PhaseTimings`) but touches no shared state
//! and emits nothing — the hot-path cost of disabled tracing is one branch
//! and one `Instant::now` per span, taken only at phase granularity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::event::{Event, EventKind};
use crate::sink::{Collector, Sink};

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// A handle for emitting spans and counters into a shared [`Sink`].
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn Sink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer: nothing is recorded anywhere.
    pub fn disabled() -> Tracer {
        Tracer { sink: None }
    }

    /// A tracer writing into `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Tracer {
        Tracer { sink: Some(sink) }
    }

    /// Convenience: a fresh in-memory [`Collector`] plus a tracer feeding
    /// it.
    pub fn collector() -> (Tracer, Arc<Collector>) {
        let collector = Arc::new(Collector::new());
        (
            Tracer::new(Arc::clone(&collector) as Arc<dyn Sink>),
            collector,
        )
    }

    /// Whether events are being recorded. Callers may use this to skip
    /// computing expensive arguments (e.g. pattern-universe sizes).
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span. The guard emits one [`EventKind::Span`] event when
    /// ended (or dropped); nest guards to build the hierarchy.
    pub fn span(&self, cat: &str, name: impl Into<String>) -> Span {
        let start = Instant::now();
        match &self.sink {
            None => Span {
                sink: None,
                cat: String::new(),
                name: String::new(),
                start,
                start_micros: 0,
                depth: 0,
                args: Vec::new(),
                done: false,
            },
            Some(sink) => {
                let depth = DEPTH.with(|d| {
                    let depth = d.get();
                    d.set(depth + 1);
                    depth
                });
                Span {
                    start_micros: sink.now_micros(),
                    sink: Some(Arc::clone(sink)),
                    cat: cat.to_owned(),
                    name: name.into(),
                    start,
                    depth,
                    args: Vec::new(),
                    done: false,
                }
            }
        }
    }

    /// Emits a counter sample with the given values.
    pub fn counter(&self, cat: &str, name: &str, args: &[(&str, i64)]) {
        self.point(cat, name, EventKind::Counter, args);
    }

    /// Emits an instant marker.
    pub fn instant(&self, cat: &str, name: &str) {
        self.point(cat, name, EventKind::Instant, &[]);
    }

    fn point(&self, cat: &str, name: &str, kind: EventKind, args: &[(&str, i64)]) {
        let Some(sink) = &self.sink else { return };
        sink.emit(Event {
            name: name.to_owned(),
            cat: cat.to_owned(),
            kind,
            ts_micros: sink.now_micros(),
            tid: current_tid(),
            depth: DEPTH.with(|d| d.get()),
            args: args.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        });
    }
}

/// RAII guard for an open span. Ending it (explicitly via [`Span::end`] or
/// implicitly on drop) emits the completed-span event and returns the
/// measured wall-clock duration.
pub struct Span {
    sink: Option<Arc<dyn Sink>>,
    cat: String,
    name: String,
    start: Instant,
    start_micros: u64,
    depth: u32,
    args: Vec<(String, i64)>,
    done: bool,
}

impl Span {
    /// Attaches a structured value, reported when the span ends. No-op on
    /// a disabled tracer's span.
    pub fn arg(&mut self, key: &str, value: i64) -> &mut Self {
        if self.sink.is_some() {
            self.args.push((key.to_owned(), value));
        }
        self
    }

    /// Ends the span now and returns its wall-clock duration.
    pub fn end(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if self.done {
            return elapsed;
        }
        self.done = true;
        if let Some(sink) = self.sink.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            sink.emit(Event {
                name: std::mem::take(&mut self.name),
                cat: std::mem::take(&mut self.cat),
                kind: EventKind::Span {
                    dur_micros: elapsed.as_micros() as u64,
                },
                ts_micros: self.start_micros,
                tid: current_tid(),
                depth: self.depth,
                args: std::mem::take(&mut self.args),
            });
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_emits_nothing_but_still_times() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        let span = tracer.span("phase", "init");
        let dur = span.end();
        assert!(dur < Duration::from_secs(1));
        tracer.counter("meta", "x", &[("a", 1)]);
    }

    #[test]
    fn disabled_fast_path_carries_no_state() {
        // Clones and the Default impl stay disabled.
        let tracer = Tracer::disabled();
        assert!(!tracer.clone().enabled());
        assert!(!Tracer::default().enabled());

        // Disabled spans take the no-sink arm: args are dropped, nothing
        // allocates into the span, and drop order doesn't matter.
        let mut span = tracer.span("phase", "outer");
        span.arg("nodes", 1).arg("instrs", 2);
        let inner = tracer.span("phase", "inner");
        drop(span);
        drop(inner);

        // Crucially, a disabled span never touches the thread-local depth
        // counter — so interleaving disabled spans with an enabled tracer
        // must not skew the enabled tracer's recorded nesting.
        let (enabled, collector) = Tracer::collector();
        let _quiet = tracer.span("phase", "quiet");
        {
            let _loud = enabled.span("phase", "loud");
            let _quiet_inner = tracer.span("phase", "quiet-inner");
            let _loud_inner = enabled.span("phase", "loud-inner");
        }
        let events = collector.take();
        assert_eq!(events.len(), 2, "only the enabled tracer emits");
        assert_eq!(
            (events[0].name.as_str(), events[0].depth),
            ("loud-inner", 1)
        );
        assert_eq!((events[1].name.as_str(), events[1].depth), ("loud", 0));
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let (tracer, collector) = Tracer::collector();
        {
            let mut outer = tracer.span("phase", "optimize");
            outer.arg("nodes", 7);
            {
                let _inner = tracer.span("phase", "init");
            }
            let _ = outer.end();
        }
        let events = collector.take();
        assert_eq!(events.len(), 2);
        // Inner span ends first, so it is emitted first.
        assert_eq!(events[0].name, "init");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "optimize");
        assert_eq!(events[1].depth, 0);
        assert_eq!(events[1].arg("nodes"), Some(7));
        // The inner span lies within the outer one.
        let (i, o) = (&events[0], &events[1]);
        assert!(i.ts_micros >= o.ts_micros);
        assert!(
            i.ts_micros + i.dur_micros().unwrap() <= o.ts_micros + o.dur_micros().unwrap() + 1,
            "{i:?} not inside {o:?}"
        );
    }

    #[test]
    fn depth_recovers_after_drop() {
        let (tracer, collector) = Tracer::collector();
        {
            let _a = tracer.span("phase", "a");
        }
        {
            let _b = tracer.span("phase", "b");
        }
        let events = collector.take();
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[1].depth, 0);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let (tracer, collector) = Tracer::collector();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let t = tracer.clone();
                s.spawn(move || {
                    let _span = t.span("job", "work");
                });
            }
        });
        let events = collector.take();
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "{events:?}");
    }

    #[test]
    fn counters_carry_args() {
        let (tracer, collector) = Tracer::collector();
        tracer.counter("analysis", "rae", &[("iterations", 42), ("pushes", 99)]);
        let events = collector.take();
        assert_eq!(events[0].arg("iterations"), Some(42));
        assert_eq!(events[0].arg("pushes"), Some(99));
        assert_eq!(events[0].kind, crate::event::EventKind::Counter);
    }
}
