//! `am-trace`: structured tracing and optimizer metrics for the assignment
//! motion workspace.
//!
//! The crate has three layers:
//!
//! * **Collection** — a cheap, cloneable [`Tracer`] handle producing
//!   hierarchical [`Span`]s (`optimize > round 3 > rae > solve`), counter
//!   samples and instant markers into a shared [`Sink`]. The disabled
//!   tracer is the default everywhere and its spans cost one branch and an
//!   `Instant::now` — no allocation, no locking, no thread-local traffic.
//! * **Model** — [`OptStats`] folds a flat event stream into per-span
//!   latency statistics (exact percentiles + log₂ histograms), per-analysis
//!   fixpoint totals and an iterations-vs-program-size scatter.
//! * **Export** — [`export::summary_tree`], [`export::jsonl`] and
//!   [`export::chrome_trace`] render the same events for humans, for
//!   `amstat` aggregation and for `chrome://tracing`.
//!
//! Everything is dependency-free and thread-safe; pipeline workers share
//! one collector through `Arc`.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod sink;
pub mod stats;
pub mod tracer;

pub use event::{Event, EventKind};
pub use sink::{Collector, NoopSink, Sink};
pub use stats::{AnalysisTotals, DurStats, Histogram, OptStats, ScatterPoint};
pub use tracer::{Span, Tracer};
