//! `amstat`: aggregate JSONL traces produced by `amopt --trace` or
//! `amserve --trace`.
//!
//! Reads one or more JSON-lines trace files, folds every event into the
//! [`OptStats`] model and prints per-phase latency percentiles
//! (p50/p95/p99), per-analysis fixpoint totals and the
//! iterations-vs-program-size scatter. Server traces additionally get a
//! service section: answered-by-source breakdown, backpressure and error
//! totals, and worker service-latency percentiles. Exits nonzero on
//! malformed or empty input so CI can use it as a trace-shape check.

use std::process::ExitCode;

use am_trace::export::parse_jsonl_line;
use am_trace::stats::OptStats;

fn usage() -> ! {
    eprintln!("usage: amstat TRACE.jsonl [TRACE.jsonl ...]");
    eprintln!();
    eprintln!("Aggregates JSONL traces written by `amopt --trace FILE --trace-format jsonl`");
    eprintln!("or `amserve --trace FILE`: per-span latency percentiles, per-analysis");
    eprintln!("fixpoint totals, the iterations-vs-nodes scatter, and — for server traces —");
    eprintln!("the answered-by-source service summary. Exits 1 on malformed or empty input.");
    std::process::exit(2);
}

fn fmt_micros(micros: u64) -> String {
    if micros >= 10_000_000 {
        format!("{:.2}s", micros as f64 / 1e6)
    } else if micros >= 10_000 {
        format!("{:.2}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}us")
    }
}

fn run(paths: &[String]) -> Result<OptStats, String> {
    let mut stats = OptStats::default();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(parse_jsonl_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?);
        }
        if events.is_empty() {
            return Err(format!("{path}: no events"));
        }
        stats.fold(&events);
    }
    Ok(stats)
}

fn print_report(stats: &OptStats) {
    println!("events: {}", stats.events);
    println!();
    println!(
        "{:<24} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "span", "count", "total", "p50", "p95", "p99", "max"
    );
    for (key, d) in &stats.spans {
        println!(
            "{key:<24} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            d.count,
            fmt_micros(d.total_micros),
            fmt_micros(d.quantile(0.5)),
            fmt_micros(d.quantile(0.95)),
            fmt_micros(d.quantile(0.99)),
            fmt_micros(d.max_micros),
        );
    }
    if !stats.analyses.is_empty() {
        println!();
        println!(
            "{:<14} {:>7} {:>12} {:>12} {:>14}",
            "analysis", "solves", "iterations", "pushes", "peak worklist"
        );
        for (name, a) in &stats.analyses {
            println!(
                "{name:<14} {:>7} {:>12} {:>12} {:>14}",
                a.solves, a.iterations, a.worklist_pushes, a.max_worklist_len
            );
        }
        println!("total fixpoint iterations: {}", stats.total_iterations());
    }
    if !stats.counters.is_empty() {
        println!();
        println!("counters");
        for (key, value) in &stats.counters {
            println!("  {key} = {value}");
        }
    }
    if let Some(service) = stats.service() {
        println!();
        println!("service (amserve trace)");
        println!(
            "  sessions: {}   worker jobs: {}   answered: {} ({:.1}% cached)",
            service.sessions,
            service.leaders,
            service.answered(),
            service.cached_pct(),
        );
        println!(
            "  by source: fresh {}, memory {}, disk {}, coalesced {}   busy: {}   errors: {}",
            service.fresh,
            service.memory,
            service.disk,
            service.coalesced,
            service.busy,
            service.errors,
        );
        if service.service.count > 0 {
            println!(
                "  service latency: p50 {} p95 {} p99 {} max {}",
                fmt_micros(service.service.quantile(0.5)),
                fmt_micros(service.service.quantile(0.95)),
                fmt_micros(service.service.quantile(0.99)),
                fmt_micros(service.service.max_micros),
            );
        }
    }
    if !stats.scatter.is_empty() {
        println!();
        println!(
            "{:>8} {:>8} {:>12} {:>8}   iterations vs size",
            "nodes", "instrs", "iterations", "rounds"
        );
        for p in &stats.scatter {
            println!(
                "{:>8} {:>8} {:>12} {:>8}",
                p.nodes, p.instrs, p.iterations, p.rounds
            );
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        usage();
    }
    match run(&args) {
        Ok(stats) => {
            print_report(&stats);
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("amstat: {message}");
            ExitCode::FAILURE
        }
    }
}
