//! Exporters: human-readable tree summary, JSON lines, and the Chrome
//! `chrome://tracing` / Perfetto event format.
//!
//! All three work from a plain `&[Event]` slice, so any sink that can hand
//! events back (the in-memory [`Collector`](crate::sink::Collector)) can
//! feed any exporter. The JSONL format round-trips: [`parse_jsonl_line`]
//! restores exactly the [`Event`] that [`jsonl_line`] serialized, which is
//! what lets `amstat` aggregate traces across processes and corpus runs.

use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::json;
use crate::stats::OptStats;

/// Serializes one event as a single JSON line (no trailing newline).
pub fn jsonl_line(ev: &Event) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"name\":");
    json::write_str(&mut out, &ev.name);
    out.push_str(",\"cat\":");
    json::write_str(&mut out, &ev.cat);
    let ph = match ev.kind {
        EventKind::Span { .. } => "span",
        EventKind::Counter => "counter",
        EventKind::Instant => "instant",
    };
    let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":{}", ev.ts_micros);
    if let EventKind::Span { dur_micros } = ev.kind {
        let _ = write!(out, ",\"dur\":{dur_micros}");
    }
    let _ = write!(out, ",\"tid\":{},\"depth\":{}", ev.tid, ev.depth);
    out.push_str(",\"args\":");
    json::write_int_obj(&mut out, &ev.args);
    out.push('}');
    out
}

/// Serializes a whole event stream as JSON lines.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&jsonl_line(ev));
        out.push('\n');
    }
    out
}

/// Parses one JSONL line back into an [`Event`] — the inverse of
/// [`jsonl_line`].
pub fn parse_jsonl_line(line: &str) -> Result<Event, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let field = |key: &str| v.get(key).ok_or_else(|| format!("missing \"{key}\""));
    let name = field("name")?
        .as_str()
        .ok_or("\"name\" must be a string")?
        .to_owned();
    let cat = field("cat")?
        .as_str()
        .ok_or("\"cat\" must be a string")?
        .to_owned();
    let ts_micros = field("ts")?.as_u64().ok_or("\"ts\" must be an integer")?;
    let tid = field("tid")?.as_u64().ok_or("\"tid\" must be an integer")?;
    let depth = field("depth")?
        .as_u64()
        .ok_or("\"depth\" must be an integer")? as u32;
    let kind = match field("ph")?.as_str() {
        Some("span") => EventKind::Span {
            dur_micros: field("dur")?.as_u64().ok_or("\"dur\" must be an integer")?,
        },
        Some("counter") => EventKind::Counter,
        Some("instant") => EventKind::Instant,
        _ => return Err("\"ph\" must be span|counter|instant".to_owned()),
    };
    let mut args = Vec::new();
    for (key, value) in field("args")?
        .as_obj()
        .ok_or("\"args\" must be an object")?
    {
        args.push((
            key.clone(),
            value
                .as_i64()
                .ok_or_else(|| format!("arg \"{key}\" must be an integer"))?,
        ));
    }
    Ok(Event {
        name,
        cat,
        kind,
        ts_micros,
        tid,
        depth,
        args,
    })
}

/// Serializes the event stream in the Chrome trace-event format (a JSON
/// array of objects), loadable in `chrome://tracing` and Perfetto.
///
/// Spans become complete events (`"ph":"X"` with `ts`/`dur`), counters
/// become counter events (`"ph":"C"`), instants thread-scoped instant
/// events (`"ph":"i"`). All timestamps are microseconds, as the format
/// requires.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n ");
        }
        out.push_str("{\"name\":");
        json::write_str(&mut out, &ev.name);
        out.push_str(",\"cat\":");
        json::write_str(&mut out, &ev.cat);
        match ev.kind {
            EventKind::Span { dur_micros } => {
                let _ = write!(
                    out,
                    ",\"ph\":\"X\",\"ts\":{},\"dur\":{dur_micros}",
                    ev.ts_micros
                );
            }
            EventKind::Counter => {
                let _ = write!(out, ",\"ph\":\"C\",\"ts\":{}", ev.ts_micros);
            }
            EventKind::Instant => {
                let _ = write!(out, ",\"ph\":\"i\",\"ts\":{},\"s\":\"t\"", ev.ts_micros);
            }
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", ev.tid);
        out.push_str(",\"args\":");
        json::write_int_obj(&mut out, &ev.args);
        out.push('}');
    }
    out.push_str("]\n");
    out
}

fn fmt_micros(micros: u64) -> String {
    if micros >= 10_000_000 {
        format!("{:.2} s", micros as f64 / 1e6)
    } else if micros >= 10_000 {
        format!("{:.2} ms", micros as f64 / 1e3)
    } else {
        format!("{micros} us")
    }
}

/// Renders the span hierarchy as an indented tree (one block per thread,
/// spans in start order) followed by the aggregated analysis totals and
/// counters.
pub fn summary_tree(events: &[Event]) -> String {
    let mut out = String::new();
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut spans: Vec<&Event> = events
            .iter()
            .filter(|e| e.tid == tid && matches!(e.kind, EventKind::Span { .. }))
            .collect();
        if spans.is_empty() {
            continue;
        }
        spans.sort_by_key(|e| (e.ts_micros, e.depth));
        let _ = writeln!(out, "thread {tid}");
        for ev in spans {
            let indent = "  ".repeat(ev.depth as usize + 1);
            let _ = write!(
                out,
                "{indent}{} [{}] {}",
                ev.name,
                ev.cat,
                fmt_micros(ev.dur_micros().unwrap_or(0))
            );
            for (key, value) in &ev.args {
                let _ = write!(out, "  {key}={value}");
            }
            out.push('\n');
        }
    }
    let stats = OptStats::from_events(events);
    if !stats.analyses.is_empty() {
        let _ = writeln!(out, "analyses");
        for (name, totals) in &stats.analyses {
            let _ = writeln!(
                out,
                "  {name}: {} solves, {} iterations, {} pushes, peak worklist {}",
                totals.solves, totals.iterations, totals.worklist_pushes, totals.max_worklist_len
            );
        }
    }
    if !stats.counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (key, value) in &stats.counters {
            let _ = writeln!(out, "  {key} = {value}");
        }
    }
    out
}

/// A one-line digest of a trace, printed by the benches so perf regressions
/// show up in CI logs: span count, total fixpoint iterations, and p50/p95
/// of the dominant span categories.
pub fn summary_line(events: &[Event]) -> String {
    let stats = OptStats::from_events(events);
    let mut line = format!(
        "trace: {} events, {} iterations",
        stats.events,
        stats.total_iterations()
    );
    for key in ["job/job", "phase/optimize", "phase/motion", "campaign/seed"] {
        if let Some(d) = stats.spans.get(key) {
            let _ = write!(
                line,
                "; {key} n={} p50={} p95={}",
                d.count,
                fmt_micros(d.quantile(0.5)),
                fmt_micros(d.quantile(0.95))
            );
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                name: "init".into(),
                cat: "phase".into(),
                kind: EventKind::Span { dur_micros: 42 },
                ts_micros: 10,
                tid: 1,
                depth: 1,
                args: vec![("temps".into(), 3)],
            },
            Event {
                name: "optimize".into(),
                cat: "phase".into(),
                kind: EventKind::Span { dur_micros: 120 },
                ts_micros: 5,
                tid: 1,
                depth: 0,
                args: vec![("nodes".into(), 9), ("iterations".into(), 31)],
            },
            Event {
                name: "rae".into(),
                cat: "analysis".into(),
                kind: EventKind::Counter,
                ts_micros: 30,
                tid: 1,
                depth: 2,
                args: vec![("iterations".into(), 31), ("worklist_pushes".into(), 40)],
            },
            Event {
                name: "start".into(),
                cat: "meta".into(),
                kind: EventKind::Instant,
                ts_micros: 1,
                tid: 2,
                depth: 0,
                args: vec![],
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        for ev in sample_events() {
            let line = jsonl_line(&ev);
            let back = parse_jsonl_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(parse_jsonl_line("not json").is_err());
        assert!(parse_jsonl_line("{}").is_err());
        assert!(
            parse_jsonl_line(
                r#"{"name":"x","cat":"c","ph":"span","ts":1,"tid":1,"depth":0,"args":{}}"#
            )
            .is_err(),
            "span without dur"
        );
        assert!(parse_jsonl_line(
            r#"{"name":"x","cat":"c","ph":"blip","ts":1,"tid":1,"depth":0,"args":{}}"#
        )
        .is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_the_right_phases() {
        let text = chrome_trace(&sample_events());
        let parsed = json::parse(&text).unwrap();
        let items = parsed.as_arr().unwrap();
        assert_eq!(items.len(), 4);
        let phases: Vec<&str> = items
            .iter()
            .map(|i| i.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, vec!["X", "X", "C", "i"]);
        for item in items {
            assert!(item.get("name").is_some());
            assert!(item.get("pid").is_some());
            assert!(item.get("tid").is_some());
            assert!(item.get("ts").is_some());
        }
        assert_eq!(items[0].get("dur").unwrap().as_i64(), Some(42));
        assert_eq!(
            items[2]
                .get("args")
                .unwrap()
                .get("iterations")
                .unwrap()
                .as_i64(),
            Some(31)
        );
    }

    #[test]
    fn summary_tree_indents_by_depth_and_totals_analyses() {
        let text = summary_tree(&sample_events());
        assert!(text.contains("thread 1"), "{text}");
        // optimize (depth 0) before init (depth 1) despite emission order.
        let opt = text.find("optimize [phase]").unwrap();
        let init = text.find("init [phase]").unwrap();
        assert!(opt < init, "{text}");
        assert!(text.contains("    init"), "indented: {text}");
        assert!(text.contains("rae: 1 solves, 31 iterations"), "{text}");
    }

    #[test]
    fn summary_line_reports_iterations() {
        let line = summary_line(&sample_events());
        assert!(line.contains("4 events"), "{line}");
        assert!(line.contains("31 iterations"), "{line}");
        assert!(line.contains("phase/optimize"), "{line}");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        assert_eq!(jsonl(&[]), "");
        assert_eq!(chrome_trace(&[]), "[]\n");
        assert_eq!(summary_tree(&[]), "");
    }
}
