//! The optimizer metrics model: [`Histogram`], [`DurStats`] and the
//! aggregated [`OptStats`] built from a flat event stream.
//!
//! `OptStats` is what the human-readable exporters and `amstat` share: it
//! folds spans into per-`cat/name` latency statistics (count, total, exact
//! percentiles, a log₂ histogram), folds `analysis` counters into
//! per-analysis fixpoint totals (iterations, worklist pushes, peak worklist
//! length), sums every other counter, and extracts the
//! iterations-vs-program-size scatter the complexity claim (paper Sec. 4.5)
//! is checked against.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Number of log₂ buckets; bucket `i ≥ 1` holds durations in
/// `[2^(i-1), 2^i)` microseconds, bucket 0 holds zero. 2³⁹ µs ≈ 6 days.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram over microsecond durations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Sample count per bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a duration.
    pub fn bucket_of(micros: u64) -> usize {
        ((64 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, micros: u64) {
        self.buckets[Self::bucket_of(micros)] += 1;
        self.count += 1;
    }

    /// The inclusive upper bound of the bucket holding quantile `q`
    /// (0 < q ≤ 1); 0 when empty. A power-of-two estimate, by design.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// Latency statistics for one span name: exact percentiles from the raw
/// samples plus the log₂ histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurStats {
    /// Number of spans.
    pub count: u64,
    /// Sum of durations, microseconds.
    pub total_micros: u64,
    /// Largest single duration.
    pub max_micros: u64,
    /// The log₂ histogram of the same samples.
    pub histogram: Histogram,
    /// Every sample, sorted ascending (kept for exact percentiles).
    pub sorted_micros: Vec<u64>,
}

impl DurStats {
    /// Records one sample (used by the fold below and by live recorders
    /// such as the `am-serve` metrics, which build `DurStats` directly
    /// instead of going through an event stream).
    pub fn record(&mut self, micros: u64) {
        self.count += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
        self.histogram.record(micros);
        let at = self.sorted_micros.partition_point(|&v| v <= micros);
        self.sorted_micros.insert(at, micros);
    }

    /// Exact quantile `q` (0 < q ≤ 1) over the recorded samples. Degenerate
    /// inputs stay total: an empty recorder answers 0 for every `q`, a
    /// single sample answers itself for every `q`, and out-of-range `q`
    /// clamps to the smallest/largest sample rather than indexing out of
    /// bounds.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.sorted_micros.is_empty() {
            return 0;
        }
        let rank = (q * self.sorted_micros.len() as f64).ceil() as usize;
        self.sorted_micros[rank.clamp(1, self.sorted_micros.len()) - 1]
    }
}

/// Fixpoint-solver totals for one analysis (`rae`, `aht`, `delayability`,
/// `usability`), folded over every `analysis` counter event of that name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisTotals {
    /// Counter samples folded in (≈ solver invocations).
    pub solves: u64,
    /// Total point updates until convergence.
    pub iterations: u64,
    /// Total worklist pushes.
    pub worklist_pushes: u64,
    /// Peak worklist length over all solves.
    pub max_worklist_len: u64,
}

/// One point of the iterations-vs-size scatter: an `optimize` span's
/// program size against the fixpoint work it cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScatterPoint {
    /// Flow-graph nodes of the input program.
    pub nodes: i64,
    /// Instructions of the input program.
    pub instrs: i64,
    /// Total solver iterations across every analysis of the run.
    pub iterations: i64,
    /// Motion rounds until stabilization.
    pub rounds: i64,
}

/// A service-level view over an `am-serve` trace: the answered-by-source
/// breakdown, backpressure/error totals and the session/request span
/// statistics. Derived from the generic [`OptStats`] aggregates by
/// [`OptStats::service`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceSummary {
    /// Client connections (`conn/session` spans).
    pub sessions: u64,
    /// Jobs a worker actually processed (`request/optimize` spans) —
    /// cache hits included, coalesced followers not.
    pub leaders: u64,
    /// Results computed fresh (`serve/source/fresh`).
    pub fresh: u64,
    /// Results served from the in-memory cache (`serve/source/memory`).
    pub memory: u64,
    /// Results served from the persistent cache (`serve/source/disk`).
    pub disk: u64,
    /// Requests answered by coalescing onto an identical in-flight job
    /// (`serve/source/coalesced`).
    pub coalesced: u64,
    /// Requests rejected with `busy` (`serve/busy/count`).
    pub busy: u64,
    /// Requests answered with an error (`serve/error/count`).
    pub errors: u64,
    /// Worker service latency (the `request/optimize` span durations).
    pub service: DurStats,
    /// Connection lifetimes (the `conn/session` span durations).
    pub session: DurStats,
}

impl ServiceSummary {
    /// Successful answers across every source.
    pub fn answered(&self) -> u64 {
        self.fresh + self.memory + self.disk + self.coalesced
    }

    /// Fraction of answers that avoided a fresh optimization, in percent;
    /// 0 when nothing was answered.
    pub fn cached_pct(&self) -> f64 {
        let answered = self.answered();
        if answered == 0 {
            return 0.0;
        }
        (answered - self.fresh) as f64 * 100.0 / answered as f64
    }
}

/// Aggregated optimizer metrics over an event stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptStats {
    /// Per-span statistics keyed `cat/name` (e.g. `phase/motion`).
    pub spans: BTreeMap<String, DurStats>,
    /// Per-analysis fixpoint totals keyed by analysis name.
    pub analyses: BTreeMap<String, AnalysisTotals>,
    /// Every other counter value, summed, keyed `cat/name/key`.
    pub counters: BTreeMap<String, i64>,
    /// Iterations-vs-size scatter, one point per `optimize` span.
    pub scatter: Vec<ScatterPoint>,
    /// Total events folded in.
    pub events: u64,
}

impl OptStats {
    /// Folds `events` into the aggregate model.
    pub fn from_events(events: &[Event]) -> OptStats {
        let mut stats = OptStats::default();
        stats.fold(events);
        stats
    }

    /// Folds more events into an existing aggregate (amstat merges many
    /// trace files this way).
    pub fn fold(&mut self, events: &[Event]) {
        for ev in events {
            self.events += 1;
            match &ev.kind {
                EventKind::Span { dur_micros } => {
                    self.spans
                        .entry(format!("{}/{}", ev.cat, ev.name))
                        .or_default()
                        .record(*dur_micros);
                    if ev.cat == "phase" && ev.name == "optimize" {
                        self.scatter.push(ScatterPoint {
                            nodes: ev.arg("nodes").unwrap_or(0),
                            instrs: ev.arg("instrs").unwrap_or(0),
                            iterations: ev.arg("iterations").unwrap_or(0),
                            rounds: ev.arg("rounds").unwrap_or(0),
                        });
                    }
                }
                EventKind::Counter if ev.cat == "analysis" => {
                    let totals = self.analyses.entry(ev.name.clone()).or_default();
                    totals.solves += 1;
                    totals.iterations += ev.arg("iterations").unwrap_or(0).max(0) as u64;
                    totals.worklist_pushes += ev.arg("worklist_pushes").unwrap_or(0).max(0) as u64;
                    totals.max_worklist_len = totals
                        .max_worklist_len
                        .max(ev.arg("max_worklist_len").unwrap_or(0).max(0) as u64);
                }
                EventKind::Counter => {
                    for (key, value) in &ev.args {
                        *self
                            .counters
                            .entry(format!("{}/{}/{}", ev.cat, ev.name, key))
                            .or_insert(0) += value;
                    }
                }
                EventKind::Instant => {}
            }
        }
    }

    /// Total fixpoint iterations across every analysis.
    pub fn total_iterations(&self) -> u64 {
        self.analyses.values().map(|a| a.iterations).sum()
    }

    /// The service-level view of an `am-serve` trace, or `None` when the
    /// stream contains no server events (a plain `amopt` trace).
    pub fn service(&self) -> Option<ServiceSummary> {
        let has_server_events = self.spans.contains_key("conn/session")
            || self.counters.keys().any(|k| k.starts_with("serve/"));
        if !has_server_events {
            return None;
        }
        let counter = |key: &str| self.counters.get(key).copied().unwrap_or(0).max(0) as u64;
        let span = |key: &str| self.spans.get(key).cloned().unwrap_or_default();
        let session = span("conn/session");
        let service = span("request/optimize");
        Some(ServiceSummary {
            sessions: session.count,
            leaders: service.count,
            fresh: counter("serve/source/fresh"),
            memory: counter("serve/source/memory"),
            disk: counter("serve/source/disk"),
            coalesced: counter("serve/source/coalesced"),
            busy: counter("serve/busy/count"),
            errors: counter("serve/error/count"),
            service,
            session,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: &str, name: &str, dur: u64, args: Vec<(String, i64)>) -> Event {
        Event {
            name: name.into(),
            cat: cat.into(),
            kind: EventKind::Span { dur_micros: dur },
            ts_micros: 0,
            tid: 1,
            depth: 0,
            args,
        }
    }

    fn counter(cat: &str, name: &str, args: Vec<(String, i64)>) -> Event {
        Event {
            name: name.into(),
            cat: cat.into(),
            kind: EventKind::Counter,
            ts_micros: 0,
            tid: 1,
            depth: 0,
            args,
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        // p50 over {1,2,3,4,100,1000}: 3rd sample = 3 → bucket [2,4).
        assert_eq!(h.quantile(0.5), 3);
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn durstats_exact_percentiles() {
        let mut d = DurStats::default();
        for v in [50u64, 10, 30, 20, 40] {
            d.record(v);
        }
        assert_eq!(d.sorted_micros, vec![10, 20, 30, 40, 50]);
        assert_eq!(d.quantile(0.5), 30);
        assert_eq!(d.quantile(0.95), 50);
        assert_eq!(d.quantile(1.0), 50);
        assert_eq!(d.max_micros, 50);
        assert_eq!(d.total_micros, 150);
    }

    #[test]
    fn durstats_quantiles_survive_degenerate_inputs() {
        // Empty: every quantile is 0, including the out-of-range ones.
        let empty = DurStats::default();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0, 2.0] {
            assert_eq!(empty.quantile(q), 0, "empty at q={q}");
        }
        assert_eq!(empty.histogram.quantile(0.5), 0, "empty histogram");

        // One sample: every quantile is that sample.
        let mut single = DurStats::default();
        single.record(42);
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(single.quantile(q), 42, "single sample at q={q}");
        }
        assert_eq!((single.count, single.max_micros), (1, 42));

        // Out-of-range q clamps instead of panicking: below the first
        // sample's rank lands on the minimum, above the last on the max.
        let mut d = DurStats::default();
        for v in [10u64, 20, 30] {
            d.record(v);
        }
        assert_eq!(d.quantile(0.0), 10);
        assert_eq!(d.quantile(-1.0), 10);
        assert_eq!(d.quantile(5.0), 30);

        // A zero-microsecond sample is representable end to end.
        let mut zero = DurStats::default();
        zero.record(0);
        assert_eq!(zero.quantile(0.5), 0);
        assert_eq!(zero.histogram.count, 1);
    }

    #[test]
    fn events_fold_into_the_model() {
        let events = vec![
            span(
                "phase",
                "optimize",
                120,
                vec![
                    ("nodes".into(), 9),
                    ("instrs".into(), 30),
                    ("iterations".into(), 77),
                    ("rounds".into(), 2),
                ],
            ),
            span("phase", "init", 20, vec![]),
            counter(
                "analysis",
                "rae",
                vec![
                    ("iterations".into(), 40),
                    ("worklist_pushes".into(), 55),
                    ("max_worklist_len".into(), 12),
                ],
            ),
            counter(
                "analysis",
                "rae",
                vec![
                    ("iterations".into(), 37),
                    ("worklist_pushes".into(), 44),
                    ("max_worklist_len".into(), 9),
                ],
            ),
            counter("batch", "cache", vec![("hits".into(), 3)]),
            counter("batch", "cache", vec![("hits".into(), 2)]),
        ];
        let stats = OptStats::from_events(&events);
        assert_eq!(stats.events, 6);
        assert_eq!(stats.spans["phase/init"].count, 1);
        let rae = &stats.analyses["rae"];
        assert_eq!(rae.solves, 2);
        assert_eq!(rae.iterations, 77);
        assert_eq!(rae.worklist_pushes, 99);
        assert_eq!(rae.max_worklist_len, 12);
        assert_eq!(stats.counters["batch/cache/hits"], 5);
        assert_eq!(stats.scatter.len(), 1);
        assert_eq!(stats.scatter[0].nodes, 9);
        assert_eq!(stats.scatter[0].iterations, 77);
        assert_eq!(stats.total_iterations(), 77);
        assert_eq!(stats.service(), None, "no server events in an amopt trace");
    }

    #[test]
    fn server_traces_summarize_by_source() {
        let events = vec![
            span("conn", "session", 900, vec![("requests".into(), 5)]),
            span("conn", "session", 400, vec![("requests".into(), 2)]),
            span("request", "optimize", 120, vec![("queue_micros".into(), 8)]),
            span("request", "optimize", 40, vec![("queue_micros".into(), 3)]),
            span("request", "optimize", 60, vec![("queue_micros".into(), 2)]),
            counter(
                "serve",
                "source",
                vec![("fresh".into(), 1), ("coalesced".into(), 2)],
            ),
            counter(
                "serve",
                "source",
                vec![("memory".into(), 1), ("coalesced".into(), 0)],
            ),
            counter(
                "serve",
                "source",
                vec![("disk".into(), 1), ("coalesced".into(), 0)],
            ),
            counter("serve", "busy", vec![("count".into(), 4)]),
            counter("serve", "error", vec![("count".into(), 1)]),
        ];
        let summary = OptStats::from_events(&events)
            .service()
            .expect("service trace");
        assert_eq!(summary.sessions, 2);
        assert_eq!(summary.leaders, 3);
        assert_eq!(
            (
                summary.fresh,
                summary.memory,
                summary.disk,
                summary.coalesced
            ),
            (1, 1, 1, 2)
        );
        assert_eq!(summary.answered(), 5);
        assert_eq!(summary.busy, 4);
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.cached_pct(), 80.0);
        assert_eq!(summary.service.quantile(0.5), 60);
        assert_eq!(summary.session.max_micros, 900);
    }
}
