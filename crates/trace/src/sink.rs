//! Where events go: the [`Sink`] trait, the always-off [`NoopSink`] and the
//! in-memory [`Collector`].
//!
//! Sinks are shared as `Arc<dyn Sink>`; every producer in the workspace
//! (optimizer phases, pipeline workers, validation campaigns) writes to the
//! same sink, and worker threads interleave safely — the collector locks
//! only to append.

use std::sync::Mutex;
use std::time::Instant;

use crate::event::Event;

/// A destination for trace events.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn emit(&self, event: Event);
    /// Microseconds elapsed since this sink's epoch (events are stamped
    /// relative to it).
    fn now_micros(&self) -> u64;
}

/// A sink that drops everything. [`Tracer::disabled`](crate::Tracer::disabled)
/// short-circuits before even building events, so this type mostly exists
/// to make `Arc<dyn Sink>` total.
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _event: Event) {}
    fn now_micros(&self) -> u64 {
        0
    }
}

/// An in-memory, thread-safe event collector with a fixed epoch.
pub struct Collector {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// Creates an empty collector; its epoch is *now*.
    pub fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A copy of every event recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for Collector {
    fn emit(&self, event: Event) {
        self.events.lock().unwrap().push(event);
    }

    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn instant(name: &str) -> Event {
        Event {
            name: name.into(),
            cat: "meta".into(),
            kind: EventKind::Instant,
            ts_micros: 0,
            tid: 1,
            depth: 0,
            args: Vec::new(),
        }
    }

    #[test]
    fn collector_records_in_order_and_drains() {
        let c = Collector::new();
        c.emit(instant("a"));
        c.emit(instant("b"));
        assert_eq!(c.len(), 2);
        let events = c.take();
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        assert!(c.is_empty());
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = std::sync::Arc::new(Collector::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..25 {
                        c.emit(instant(&format!("t{t}-{i}")));
                    }
                });
            }
        });
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn clock_is_monotonic() {
        let c = Collector::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
