//! A minimal JSON reader/writer — just enough for the trace formats.
//!
//! The workspace builds with no external dependencies, so the exporters
//! hand-serialize and `amstat` parses with this small recursive-descent
//! reader. It accepts standard JSON (objects, arrays, strings with the
//! common escapes, numbers, booleans, null); numbers are kept as `f64`,
//! which is exact for every counter the tracer emits (|v| < 2⁵³).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer (rejects non-integral numbers).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// The elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: it
                    // came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an object of integer values (`{"k":1,...}`) to `out`.
pub fn write_int_obj(out: &mut String, members: &[(String, i64)]) {
    out.push('{');
    for (i, (k, v)) in members.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_i64(), Some(-3));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn string_round_trip() {
        for s in ["plain", "tabs\tand\nnewlines", "quo\"te \\ back", "μικρό"] {
            let mut out = String::new();
            write_str(&mut out, s);
            assert_eq!(parse(&out).unwrap().as_str(), Some(s), "{out}");
        }
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut out = String::new();
        write_str(&mut out, "\u{1}");
        assert_eq!(out, "\"\\u0001\"");
        assert_eq!(parse(&out).unwrap().as_str(), Some("\u{1}"));
    }

    #[test]
    fn int_obj_round_trip() {
        let mut out = String::new();
        write_int_obj(
            &mut out,
            &[("iterations".to_owned(), 42), ("neg".to_owned(), -7)],
        );
        let v = parse(&out).unwrap();
        assert_eq!(v.get("iterations").unwrap().as_i64(), Some(42));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-7));
    }
}
