//! The event model: everything a sink records.
//!
//! An [`Event`] is one observation — a completed span, a counter sample or
//! an instant marker — stamped with a monotonic timestamp relative to the
//! collector's epoch, the logical thread that produced it, and the span
//! nesting depth at the time. Events are plain data: exporters and the
//! [`OptStats`](crate::stats::OptStats) model work from `&[Event]` alone,
//! with no back-reference to the tracer that produced them.

/// What kind of observation an [`Event`] is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span with its duration in microseconds.
    Span {
        /// Wall-clock duration of the span, microseconds.
        dur_micros: u64,
    },
    /// A point-in-time counter sample; the values live in [`Event::args`].
    Counter,
    /// A point-in-time marker with no values of its own.
    Instant,
}

/// One trace observation.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event name (span or counter name, e.g. `init`, `rae`, `job`).
    pub name: String,
    /// Category, grouping related events: `phase`, `round`, `analysis`,
    /// `job`, `batch`, `campaign`, `meta` (see docs/OBSERVABILITY.md).
    pub cat: String,
    /// Span / counter / instant.
    pub kind: EventKind,
    /// Start time in microseconds since the collector's epoch. For spans
    /// this is the *begin* timestamp (end = `ts_micros + dur_micros`).
    pub ts_micros: u64,
    /// Logical thread id (small integers assigned per OS thread).
    pub tid: u64,
    /// Span nesting depth on this thread when the event began (0 = root).
    pub depth: u32,
    /// Structured values: `(key, value)` pairs, insertion-ordered.
    pub args: Vec<(String, i64)>,
}

impl Event {
    /// The value of argument `key`, if present.
    pub fn arg(&self, key: &str) -> Option<i64> {
        self.args.iter().find_map(|(k, v)| (k == key).then_some(*v))
    }

    /// The span duration, if this event is a span.
    pub fn dur_micros(&self) -> Option<u64> {
        match self.kind {
            EventKind::Span { dur_micros } => Some(dur_micros),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_lookup_finds_first_match() {
        let ev = Event {
            name: "x".into(),
            cat: "phase".into(),
            kind: EventKind::Counter,
            ts_micros: 0,
            tid: 1,
            depth: 0,
            args: vec![("a".into(), 1), ("b".into(), 2)],
        };
        assert_eq!(ev.arg("b"), Some(2));
        assert_eq!(ev.arg("c"), None);
        assert_eq!(ev.dur_micros(), None);
    }
}
