//! End-to-end service tests: real sockets, real threads, real disk.
//!
//! Each test boots an in-process [`Server`] on an ephemeral localhost
//! port (or a unix socket), drives it with [`Client`] connections, and
//! shuts it down gracefully through the protocol.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use am_ir::random::{unstructured, SplitMix64, UnstructuredConfig};
use am_lang::SourceKind;
use am_serve::client::{Client, ClientError};
use am_serve::diskcache::DiskCacheConfig;
use am_serve::net::Endpoint;
use am_serve::proto::Reply;
use am_serve::server::{Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("am-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Boots a server on 127.0.0.1:0, returning its endpoint and the thread
/// running it (joined by shutting the server down through a client).
fn boot(config: ServerConfig) -> (Endpoint, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind");
    let endpoint = server.endpoint().clone();
    (endpoint, thread::spawn(move || server.run()))
}

fn stop(endpoint: &Endpoint, handle: thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(endpoint).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server run");
}

/// A mid-size program that takes a worker a little while to optimize —
/// used to keep the single-worker queue occupied in backpressure tests.
fn slow_program(seed: u64) -> String {
    let mut rng = SplitMix64::new(seed);
    let g = unstructured(
        &mut rng,
        &UnstructuredConfig {
            nodes: 48,
            extra_edges: 24,
            max_instrs: 4,
            num_vars: 6,
            allow_div: false,
        },
    );
    am_ir::text::to_text(&g)
}

#[test]
fn ping_optimize_stats_shutdown_round_trip() {
    let (endpoint, handle) = boot(ServerConfig::default());
    let mut client = Client::connect(&endpoint).expect("connect");
    client.ping().expect("ping");

    let result = client
        .optimize(
            "paper.ir",
            SourceKind::Ir,
            "start 1\nend 4\n\
             node 1 { y := c+d }\n\
             node 2 { branch x+z > y+i }\n\
             node 3 { y := c+d; x := y+z; i := i+x }\n\
             node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .expect("optimize");
    assert_eq!(result.source, "fresh");
    assert_eq!(result.hash.len(), 16);
    assert!(result.converged);
    assert!(result.canonical.contains("node"));
    assert!(
        result.eliminated > 0,
        "the paper example loses an assignment"
    );

    // Same program again: served from memory, byte-identical.
    let again = client
        .optimize(
            "paper2.ir",
            SourceKind::Ir,
            "start 1\nend 4\n\
             node 1 { y := c+d }\n\
             node 2 { branch x+z > y+i }\n\
             node 3 { y := c+d; x := y+z; i := i+x }\n\
             node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .expect("optimize again");
    assert_eq!(again.source, "memory");
    assert_eq!(again.hash, result.hash);
    assert_eq!(again.canonical, result.canonical);

    // While-language front end over the same connection.
    let wl = client
        .optimize(
            "count.wl",
            SourceKind::While,
            "x := 0; while (x < 9) { x := x + 1; } print(x);",
        )
        .expect("optimize wl");
    assert_eq!(wl.source, "fresh");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests_ping, 1);
    assert_eq!(stats.requests_optimize, 3);
    assert_eq!((stats.fresh, stats.memory_hits), (2, 1));
    assert_eq!(stats.connections_open, 1);
    assert!(stats.disk_cache.is_none());
    assert_eq!(stats.latency_request.count, 3);
    assert!(stats.uptime_micros > 0);

    stop(&endpoint, handle);
}

#[test]
fn malformed_programs_fail_cleanly_and_the_connection_survives() {
    let (endpoint, handle) = boot(ServerConfig::default());
    let mut client = Client::connect(&endpoint).expect("connect");

    let err = client
        .optimize("bad.ir", SourceKind::Ir, "start 1\nend 1\nthis is not ir")
        .expect_err("malformed program must fail");
    let ClientError::Server(message) = err else {
        panic!("expected a server error, got {err:?}")
    };
    assert!(
        message.contains("bad.ir"),
        "diagnostic names the job: {message}"
    );

    // The failure was per-request: the same connection still works.
    client.ping().expect("ping after error");
    let ok = client
        .optimize("ok.ir", SourceKind::Ir, "start 1\nend 1\nnode 1 { out(x) }")
        .expect("valid program after error");
    assert_eq!(ok.source, "fresh");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.errors, 1);
    stop(&endpoint, handle);
}

#[test]
fn concurrent_clients_get_bit_identical_results_with_dedup() {
    let (endpoint, handle) = boot(ServerConfig::default());
    let corpus: Arc<Vec<(String, String)>> = Arc::new(
        am_ir::random::corpus80()
            .into_iter()
            .map(|(name, g)| (name, am_ir::text::to_text(&g)))
            .collect(),
    );

    // Two clients pipeline the same corpus twice, concurrently.
    let mut threads = Vec::new();
    for _ in 0..2 {
        let endpoint = endpoint.clone();
        let corpus = Arc::clone(&corpus);
        threads.push(thread::spawn(move || {
            // Windowed pipelining: keep at most 32 requests in flight so the
            // 64-deep per-connection queue never answers `busy`.
            const WINDOW: usize = 32;
            let mut client = Client::connect(&endpoint).expect("connect");
            let mut pending = HashMap::new();
            let mut outputs: Vec<Option<(String, String)>> = vec![None; corpus.len() * 2];
            let drain = |client: &mut Client,
                         pending: &mut HashMap<u64, usize>,
                         outputs: &mut Vec<Option<(String, String)>>| {
                let (id, reply) = client.recv().expect("recv");
                let slot = pending.remove(&id).expect("known id");
                match reply {
                    Reply::Result(r) => outputs[slot] = Some((r.hash.clone(), r.canonical.clone())),
                    other => panic!("unexpected reply: {other:?}"),
                }
            };
            for pass in 0..2 {
                for (i, (name, text)) in corpus.iter().enumerate() {
                    while pending.len() >= WINDOW {
                        drain(&mut client, &mut pending, &mut outputs);
                    }
                    let id = client
                        .submit(name.clone(), SourceKind::Ir, text.clone())
                        .expect("submit");
                    pending.insert(id, pass * corpus.len() + i);
                }
            }
            while !pending.is_empty() {
                drain(&mut client, &mut pending, &mut outputs);
            }
            outputs.into_iter().map(Option::unwrap).collect::<Vec<_>>()
        }));
    }
    let results: Vec<Vec<(String, String)>> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // Bit-identical across passes and across clients.
    assert_eq!(results[0], results[1], "both clients saw identical results");
    let n = corpus.len();
    assert_eq!(
        results[0][..n],
        results[0][n..],
        "second pass identical to first"
    );

    // Dedup: 4 × 80 answers, but each unique program optimized exactly once.
    let mut control = Client::connect(&endpoint).expect("connect");
    let stats = control.stats().expect("stats");
    assert_eq!(
        stats.fresh, n as u64,
        "one fresh optimization per unique program"
    );
    assert_eq!(
        stats.fresh + stats.memory_hits + stats.disk_hits + stats.coalesced,
        4 * n as u64,
        "every request answered from some source"
    );
    assert!(stats.memory_hits + stats.coalesced >= 3 * n as u64);

    stop(&endpoint, handle);
}

#[test]
fn disk_cache_serves_results_across_a_server_restart() {
    let dir = temp_dir("restart");
    let disk = DiskCacheConfig::new(dir.join("cache"));
    let programs: Vec<(String, String)> = (0..6)
        .map(|i| (format!("p{i}.ir"), slow_program(i)))
        .collect();

    // First server life: everything is fresh, write-through to disk.
    let (endpoint, handle) = boot(ServerConfig {
        disk: Some(disk.clone()),
        ..ServerConfig::default()
    });
    let mut first_life = Vec::new();
    {
        let mut client = Client::connect(&endpoint).expect("connect");
        for (name, text) in &programs {
            let r = client
                .optimize(name.clone(), SourceKind::Ir, text.clone())
                .expect("optimize");
            assert_eq!(r.source, "fresh");
            first_life.push((r.hash, r.canonical));
        }
        let stats = client.stats().expect("stats");
        let disk_stats = stats.disk_cache.expect("disk cache enabled");
        assert_eq!(disk_stats.stores, programs.len() as u64);
        assert_eq!(disk_stats.entries, programs.len() as u64);
    }
    stop(&endpoint, handle);

    // Second life, same cache dir, cold memory: served from disk.
    let (endpoint, handle) = boot(ServerConfig {
        disk: Some(disk),
        ..ServerConfig::default()
    });
    {
        let mut client = Client::connect(&endpoint).expect("connect");
        for ((name, text), (hash, canonical)) in programs.iter().zip(&first_life) {
            let r = client
                .optimize(name.clone(), SourceKind::Ir, text.clone())
                .expect("optimize");
            assert_eq!(r.source, "disk", "{name} served from the persistent cache");
            assert_eq!(&r.hash, hash);
            assert_eq!(
                &r.canonical, canonical,
                "{name} bit-identical across restart"
            );
        }
        // Promoted into memory: a third submission is a memory hit.
        let (name, text) = &programs[0];
        let r = client
            .optimize(name.clone(), SourceKind::Ir, text.clone())
            .expect("optimize");
        assert_eq!(r.source, "memory");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.disk_hits, programs.len() as u64);
    }
    stop(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_full_queue_answers_busy_instead_of_buffering() {
    // One worker, a two-deep queue, and a burst of distinct slow programs:
    // the submissions outrun the worker, so some must bounce with `busy`.
    let (endpoint, handle) = boot(ServerConfig {
        workers: 1,
        queue_depth: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&endpoint).expect("connect");
    let burst = 24;
    let mut pending = Vec::new();
    for i in 0..burst {
        let id = client
            .submit(format!("b{i}.ir"), SourceKind::Ir, slow_program(100 + i))
            .expect("submit");
        pending.push(id);
    }
    let mut results = 0u64;
    let mut busy = 0u64;
    for _ in 0..burst {
        match client.recv().expect("recv").1 {
            Reply::Result(_) => results += 1,
            Reply::Busy { limit, .. } => {
                assert_eq!(limit, 2);
                busy += 1;
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert_eq!(results + busy, burst);
    assert!(busy > 0, "burst of {burst} must overflow a 2-deep queue");
    assert!(results > 0, "accepted jobs are still answered");
    let stats = Client::connect(&endpoint)
        .expect("connect")
        .stats()
        .expect("stats");
    assert_eq!(stats.busy, busy);
    stop(&endpoint, handle);
}

#[test]
fn shutdown_drains_queued_work_before_acknowledging() {
    let (endpoint, handle) = boot(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&endpoint).expect("connect");
    let jobs = 6;
    for i in 0..jobs {
        client
            .submit(format!("d{i}.ir"), SourceKind::Ir, slow_program(200 + i))
            .expect("submit");
    }
    // Give the reader thread time to enqueue the burst, then ask a second
    // connection to shut the server down. The `ok` only returns once the
    // queue has drained — after which all six results must be waiting.
    thread::sleep(std::time::Duration::from_millis(300));
    let mut control = Client::connect(&endpoint).expect("connect");
    control.shutdown().expect("shutdown");
    for _ in 0..jobs {
        match client.recv().expect("drained result").1 {
            Reply::Result(_) => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn server_traces_aggregate_through_amstat_model() {
    let (tracer, collector) = am_trace::Tracer::collector();
    let (endpoint, handle) = boot(ServerConfig {
        tracer,
        ..ServerConfig::default()
    });
    {
        let mut client = Client::connect(&endpoint).expect("connect");
        let text = "start 1\nend 1\nnode 1 { x := a+b; y := a+b; out(x,y) }";
        for name in ["t0.ir", "t1.ir"] {
            client
                .optimize(name.to_owned(), SourceKind::Ir, text.to_owned())
                .expect("optimize");
        }
        client
            .optimize("bad.ir", SourceKind::Ir, "start 1\nend 1\nnot ir")
            .expect_err("malformed");
    }
    stop(&endpoint, handle);

    // The exact pipeline amstat runs: JSONL text → events → OptStats.
    let jsonl = am_trace::export::jsonl(&collector.take());
    let events: Vec<_> = jsonl
        .lines()
        .map(|l| am_trace::export::parse_jsonl_line(l).expect("parseable trace line"))
        .collect();
    let stats = am_trace::stats::OptStats::from_events(&events);
    let service = stats.service().expect("server trace has a service view");
    assert_eq!(
        service.sessions, 2,
        "client connection + shutdown connection"
    );
    assert_eq!(
        service.fresh, 1,
        "identical programs dedup to one fresh run"
    );
    assert_eq!(service.memory, 1);
    assert_eq!(service.errors, 1);
    assert_eq!(service.answered(), 2);
    assert_eq!(
        service.leaders as usize,
        service.service.sorted_micros.len()
    );
}

#[test]
fn metrics_listener_and_trace_ring_observe_requests_end_to_end() {
    let server = Server::bind(ServerConfig {
        metrics: Some(Endpoint::Tcp("127.0.0.1:0".to_owned())),
        trace_ring: 8,
        ..ServerConfig::default()
    })
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let metrics_endpoint = server.metrics_endpoint().expect("metrics bound").clone();
    let handle = thread::spawn(move || server.run());

    let mut client = Client::connect(&endpoint).expect("connect");
    let text = "start 1\nend 1\nnode 1 { x := a+b; y := a+b; out(x,y) }";
    let fresh = client
        .optimize("m0.ir", SourceKind::Ir, text.to_owned())
        .expect("optimize");
    assert_eq!(fresh.source, "fresh");
    let hit = client
        .optimize("m1.ir", SourceKind::Ir, text.to_owned())
        .expect("optimize again");
    assert_eq!(hit.source, "memory");

    // Every request carried a client-generated trace id, so both sit in
    // the ring: the fresh run with phase children, the hit without.
    let (entries, dropped) = client.trace_tail(16).expect("trace-tail");
    assert_eq!(dropped, 0);
    assert_eq!(entries.len(), 2, "both traced requests in the ring");
    assert_eq!(entries[0].name, "m0.ir");
    assert_eq!(entries[0].source, "fresh");
    assert!(entries[0].phases.is_some(), "fresh run has phase spans");
    assert_eq!(entries[0].spans().len(), 7);
    assert_eq!(entries[1].source, "memory");
    assert!(entries[1].phases.is_none(), "cache hit has no phase spans");
    assert_eq!(entries[0].trace_id.len(), 16);
    assert_ne!(entries[0].trace_id, entries[1].trace_id);
    assert_eq!(
        entries[0].trace_id[..8],
        entries[1].trace_id[..8],
        "one connection shares a trace-id prefix"
    );

    // The scrape endpoint speaks HTTP and exports the expected families.
    let mut stream = am_serve::net::NetStream::connect(&metrics_endpoint).expect("connect http");
    let (status, body) = am_obs::httpx::get(&mut stream, "/metrics").expect("GET /metrics");
    assert!(status.contains("200"), "status: {status}");
    for needle in [
        "# TYPE am_requests_total counter",
        "am_requests_total{verb=\"optimize\"} 2",
        "am_optimize_results_total{source=\"fresh\"} 1",
        "am_optimize_results_total{source=\"memory\"} 1",
        "# TYPE am_request_latency_seconds histogram",
        "am_request_latency_seconds_count 2",
        "am_cache_hits_total{tier=\"memory\"} 1",
        "am_trace_ring_entries 2",
        "am_workers",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }

    // Unknown paths and non-GET methods answer with proper HTTP errors.
    let mut stream = am_serve::net::NetStream::connect(&metrics_endpoint).expect("connect http");
    let (status, _) = am_obs::httpx::get(&mut stream, "/nope").expect("GET /nope");
    assert!(status.contains("404"), "status: {status}");

    stop(&endpoint, handle);
}

#[cfg(unix)]
#[test]
fn unix_domain_sockets_work_end_to_end() {
    let dir = temp_dir("uds");
    let socket = dir.join("am.sock");
    let (endpoint, handle) = boot(ServerConfig {
        endpoint: Endpoint::Unix(socket.clone()),
        ..ServerConfig::default()
    });
    assert_eq!(endpoint, Endpoint::Unix(socket.clone()));
    let mut client = Client::connect(&endpoint).expect("connect over uds");
    client.ping().expect("ping");
    let r = client
        .optimize(
            "u.ir",
            SourceKind::Ir,
            "start 1\nend 1\nnode 1 { x := a+b; out(x) }",
        )
        .expect("optimize");
    assert_eq!(r.source, "fresh");
    stop(&endpoint, handle);
    assert!(!socket.exists(), "socket file removed on exit");
    let _ = std::fs::remove_dir_all(&dir);
}
