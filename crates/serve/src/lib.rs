//! # am-serve
//!
//! The long-running optimization service: instead of paying process
//! startup and a cold cache per batch (`amopt`), a daemon (`amserve`)
//! keeps the [`am_pipeline::Pipeline`] engine hot and clients
//! (`amclient`) submit programs over a socket.
//!
//! * [`proto`] — the wire protocol: 4-byte length-prefixed JSON frames,
//!   id-tagged requests so responses can be pipelined and delivered out
//!   of order. Zero dependencies: hand-written writers, `am-trace`'s JSON
//!   reader.
//! * [`net`] — localhost TCP and unix-domain sockets behind one
//!   [`net::Endpoint`] syntax.
//! * [`diskcache`] — the persistent content-addressed result cache
//!   (write-temp-then-rename entries keyed by stable program hash, LRU
//!   within a byte budget), layered under the in-memory cache via
//!   [`am_pipeline::SecondaryCache`]. Results survive daemon restarts.
//! * [`server`] — the daemon core: per-connection reader threads, a
//!   shared worker pool, round-robin fairness with bounded per-connection
//!   queues (`busy` backpressure), single-flight coalescing of identical
//!   concurrent jobs, live metrics, graceful drain on shutdown.
//! * [`client`] — the client library: synchronous helpers plus pipelined
//!   submit/recv.
//! * [`metrics`] — the live aggregate behind the `stats` request.
//!
//! See `docs/SERVICE.md` for the protocol reference and operational
//! guide; `bench_service` (in this crate) measures throughput, dedup
//! ratio and latency percentiles under concurrent clients.

pub mod client;
pub mod diskcache;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use diskcache::{DiskCache, DiskCacheConfig};
pub use net::{Endpoint, NetListener, NetStream};
pub use proto::{Reply, Request, ResultPayload, StatsSnapshot};
pub use server::{Server, ServerConfig};
