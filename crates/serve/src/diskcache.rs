//! The persistent content-addressed result cache.
//!
//! One JSON file per optimized program, addressed by the input's
//! [`am_ir::alpha::stable_hash`] — the same key the in-memory
//! [`am_pipeline::ResultCache`] uses, so alpha-equivalent programs share
//! one entry across both tiers. The store plugs into the pipeline engine
//! through [`am_pipeline::SecondaryCache`]: in-memory misses fall through
//! to disk, fresh results are written through to disk.
//!
//! Layout (`v1` is the on-disk format version — a future incompatible
//! format gets a sibling directory instead of a migration):
//!
//! ```text
//! <root>/v1/<2-hex shard>/<16-hex hash>.json   one entry per program
//! <root>/v1/index.json                          recency, flushed on shutdown
//! ```
//!
//! Crash safety is write-temp-then-rename: an entry is either fully
//! present or absent, never torn. Entries that fail to parse (corruption,
//! hand-editing) are deleted and treated as misses. The store is bounded
//! by a byte budget; when a write pushes it over, the least recently used
//! entries are evicted. Recency survives restarts via `index.json` when
//! the daemon shut down gracefully; after a crash the scan falls back to
//! file modification order.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use am_core::flush::FlushStats;
use am_core::global::PhaseTimings;
use am_core::init::InitStats;
use am_core::motion::MotionStats;
use am_lint::LintSummary;
use am_pipeline::{CachedResult, SecondaryCache};
use am_trace::json::{self, Json};

use crate::proto::DiskCacheSnapshot;

/// Schema tag written into every entry file.
pub const ENTRY_SCHEMA: &str = "am-serve-cache/v1";
/// Schema tag written into the recency index.
pub const INDEX_SCHEMA: &str = "am-serve-index/v1";

/// Configuration for [`DiskCache::open`].
#[derive(Clone, Debug)]
pub struct DiskCacheConfig {
    /// Cache directory root; created if absent. The store owns
    /// `<root>/v1` entirely.
    pub root: PathBuf,
    /// Byte budget across all entries (minimum one entry is always kept).
    pub budget_bytes: u64,
}

impl DiskCacheConfig {
    /// A cache rooted at `root` with the default 256 MiB budget.
    pub fn new(root: impl Into<PathBuf>) -> DiskCacheConfig {
        DiskCacheConfig {
            root: root.into(),
            budget_bytes: 256 << 20,
        }
    }
}

struct Slot {
    bytes: u64,
    last_used: u64,
}

struct Index {
    entries: HashMap<u64, Slot>,
    total_bytes: u64,
    tick: u64,
    evictions: u64,
    stores: u64,
}

/// The persistent store. All methods are `&self` and thread-safe; the
/// pipeline's worker threads call [`SecondaryCache::load`] and
/// [`SecondaryCache::store`] concurrently.
pub struct DiskCache {
    dir: PathBuf, // <root>/v1
    budget_bytes: u64,
    index: Mutex<Index>,
    hits: AtomicU64,
    misses: AtomicU64,
    load_errors: AtomicU64,
    temp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) the store under `config.root`, scanning
    /// existing entries and restoring recency from `index.json` when one
    /// was flushed by a graceful shutdown. Leftover temp files from a
    /// crashed writer are removed.
    pub fn open(config: &DiskCacheConfig) -> io::Result<DiskCache> {
        let dir = config.root.join("v1");
        fs::create_dir_all(&dir)?;
        let recency = load_recency(&dir.join("index.json"));
        let mut entries = HashMap::new();
        let mut total_bytes = 0u64;
        let mut tick = recency.values().copied().max().unwrap_or(0);
        for shard in fs::read_dir(&dir)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for file in fs::read_dir(&shard)? {
                let file = file?;
                let path = file.path();
                let name = file.file_name();
                let name = name.to_string_lossy();
                if name.contains(".tmp") {
                    let _ = fs::remove_file(&path);
                    continue;
                }
                let Some(hash) = name
                    .strip_suffix(".json")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                else {
                    continue;
                };
                let meta = file.metadata()?;
                let last_used = recency.get(&hash).copied().unwrap_or_else(|| {
                    // No index (crash) — approximate recency by mtime.
                    meta.modified()
                        .ok()
                        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                        .map(|d| d.as_secs())
                        .unwrap_or(0)
                });
                tick = tick.max(last_used);
                total_bytes += meta.len();
                entries.insert(
                    hash,
                    Slot {
                        bytes: meta.len(),
                        last_used,
                    },
                );
            }
        }
        Ok(DiskCache {
            dir,
            budget_bytes: config.budget_bytes,
            index: Mutex::new(Index {
                entries,
                total_bytes,
                tick,
                evictions: 0,
                stores: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            load_errors: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
        })
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir
            .join(format!("{:02x}", (key >> 56) as u8))
            .join(format!("{key:016x}.json"))
    }

    /// Current counters, in the shape the `stats` response uses.
    pub fn snapshot(&self) -> DiskCacheSnapshot {
        let index = self.index.lock().unwrap();
        DiskCacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: index.stores,
            evictions: index.evictions,
            load_errors: self.load_errors.load(Ordering::Relaxed),
            entries: index.entries.len() as u64,
            bytes: index.total_bytes,
            budget_bytes: self.budget_bytes,
        }
    }

    /// Writes the recency index (temp + rename), so the next
    /// [`open`](DiskCache::open) restores LRU order exactly. Called on
    /// graceful shutdown; skipping it only costs recency fidelity.
    pub fn flush_index(&self) -> io::Result<()> {
        let index = self.index.lock().unwrap();
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":\"{INDEX_SCHEMA}\",\"entries\":[");
        let mut ordered: Vec<_> = index.entries.iter().collect();
        ordered.sort_by_key(|(hash, _)| **hash);
        for (i, (hash, slot)) in ordered.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"hash\":\"{hash:016x}\",\"last_used\":{}}}",
                slot.last_used
            );
        }
        out.push_str("]}\n");
        let final_path = self.dir.join("index.json");
        let temp = self.dir.join(format!(
            "index.tmp.{}.{}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&temp, &out)?;
        fs::rename(&temp, &final_path)
    }

    /// Evicts least-recently-used entries until the budget holds. Caller
    /// holds the index lock.
    fn evict_to_budget(&self, index: &mut Index) {
        while index.total_bytes > self.budget_bytes && index.entries.len() > 1 {
            let Some(&coldest) = index
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k)
            else {
                break;
            };
            if let Some(slot) = index.entries.remove(&coldest) {
                index.total_bytes -= slot.bytes;
                index.evictions += 1;
            }
            let _ = fs::remove_file(self.path_of(coldest));
        }
    }

    fn drop_entry(&self, key: u64) {
        let mut index = self.index.lock().unwrap();
        if let Some(slot) = index.entries.remove(&key) {
            index.total_bytes -= slot.bytes;
        }
        let _ = fs::remove_file(self.path_of(key));
    }
}

impl SecondaryCache for DiskCache {
    fn load(&self, key: u64) -> Option<CachedResult> {
        {
            let mut index = self.index.lock().unwrap();
            index.tick += 1;
            let tick = index.tick;
            match index.entries.get_mut(&key) {
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Some(slot) => slot.last_used = tick,
            }
        }
        let path = self.path_of(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                // Indexed but unreadable (deleted behind our back).
                self.load_errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.drop_entry(key);
                return None;
            }
        };
        match decode_entry(&text) {
            Ok(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            Err(_) => {
                // Corrupt entry: delete it so the slot heals on the next
                // store instead of failing forever.
                self.load_errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.drop_entry(key);
                None
            }
        }
    }

    fn store(&self, key: u64, value: &CachedResult) {
        {
            let mut index = self.index.lock().unwrap();
            index.tick += 1;
            let tick = index.tick;
            if let Some(slot) = index.entries.get_mut(&key) {
                // Already present — results are deterministic in the key,
                // so rewriting would produce the same bytes. Just touch.
                slot.last_used = tick;
                return;
            }
        }
        let text = encode_entry(value);
        let path = self.path_of(key);
        let Some(shard) = path.parent() else { return };
        // Best-effort throughout: a full disk or permission error costs
        // reuse, not correctness.
        if fs::create_dir_all(shard).is_err() {
            return;
        }
        let temp = shard.join(format!(
            "{key:016x}.tmp.{}.{}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&temp, &text).is_err() {
            let _ = fs::remove_file(&temp);
            return;
        }
        if fs::rename(&temp, &path).is_err() {
            let _ = fs::remove_file(&temp);
            return;
        }
        let mut index = self.index.lock().unwrap();
        index.tick += 1;
        index.stores += 1;
        let tick = index.tick;
        let bytes = text.len() as u64;
        if let Some(old) = index.entries.insert(
            key,
            Slot {
                bytes,
                last_used: tick,
            },
        ) {
            index.total_bytes -= old.bytes;
        }
        index.total_bytes += bytes;
        self.evict_to_budget(&mut index);
    }
}

fn load_recency(path: &Path) -> HashMap<u64, u64> {
    let mut recency = HashMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return recency;
    };
    let Ok(value) = json::parse(text.trim()) else {
        return recency;
    };
    if value.get("schema").and_then(Json::as_str) != Some(INDEX_SCHEMA) {
        return recency;
    }
    let Some(entries) = value.get("entries").and_then(Json::as_arr) else {
        return recency;
    };
    for entry in entries {
        let hash = entry
            .get("hash")
            .and_then(Json::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok());
        let last_used = entry.get("last_used").and_then(Json::as_u64);
        if let (Some(hash), Some(last_used)) = (hash, last_used) {
            recency.insert(hash, last_used);
        }
    }
    recency
}

/// Renders a cache entry file.
pub fn encode_entry(r: &CachedResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema\":\"{ENTRY_SCHEMA}\",\"canonical\":");
    json::write_str(&mut out, &r.canonical);
    let _ = write!(
        out,
        ",\"nodes\":{},\"instrs\":{},\"points\":{},\"edges_split\":{}",
        r.nodes, r.instrs, r.points, r.edges_split
    );
    let _ = write!(
        out,
        ",\"init\":{{\"assignments_decomposed\":{},\"condition_sides_extracted\":{}}}",
        r.init.assignments_decomposed, r.init.condition_sides_extracted
    );
    let _ = write!(
        out,
        ",\"motion\":{{\"rounds\":{},\"eliminated\":{},\"inserted\":{},\"removed\":{},\
         \"iterations\":{},\"worklist_pushes\":{},\"converged\":{}}}",
        r.motion.rounds,
        r.motion.eliminated,
        r.motion.inserted,
        r.motion.removed,
        r.motion.iterations,
        r.motion.worklist_pushes,
        r.motion.converged
    );
    let _ = write!(
        out,
        ",\"flush\":{{\"instances_removed\":{},\"inserted\":{},\"reconstructed\":{},\
         \"iterations\":{},\"worklist_pushes\":{},\"max_worklist_len\":{}}}",
        r.flush.instances_removed,
        r.flush.inserted,
        r.flush.reconstructed,
        r.flush.iterations,
        r.flush.worklist_pushes,
        r.flush.max_worklist_len
    );
    let _ = write!(
        out,
        ",\"timings_micros\":{{\"split\":{},\"init\":{},\"motion\":{},\"flush\":{}}}",
        r.timings.split.as_micros(),
        r.timings.init.as_micros(),
        r.timings.motion.as_micros(),
        r.timings.flush.as_micros()
    );
    match &r.lint {
        None => out.push_str(",\"lint\":null"),
        Some(lint) => {
            let _ = write!(
                out,
                ",\"lint\":{{\"errors\":{},\"warnings\":{},\"infos\":{},\"lines\":[",
                lint.errors, lint.warnings, lint.infos
            );
            for (i, line) in lint.lines.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(&mut out, line);
            }
            out.push_str("]}");
        }
    }
    out.push_str("}\n");
    out
}

/// Parses a cache entry file.
pub fn decode_entry(text: &str) -> Result<CachedResult, String> {
    let value = json::parse(text.trim()).map_err(|e| format!("bad entry JSON: {e}"))?;
    match value.get("schema").and_then(Json::as_str) {
        Some(ENTRY_SCHEMA) => {}
        Some(other) => return Err(format!("entry schema '{other}', expected '{ENTRY_SCHEMA}'")),
        None => return Err("entry is missing \"schema\"".to_owned()),
    }
    let uint = |v: &Json, key: &str| -> Result<usize, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("missing or non-integer \"{key}\""))
    };
    let uint64 = |v: &Json, key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer \"{key}\""))
    };
    let section = |key: &str| value.get(key).ok_or_else(|| format!("missing \"{key}\""));

    let canonical = value
        .get("canonical")
        .and_then(Json::as_str)
        .ok_or("missing or non-string \"canonical\"")?
        .to_owned();
    let init = section("init")?;
    let motion = section("motion")?;
    let converged = match motion.get("converged") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("missing or non-boolean \"converged\"".to_owned()),
    };
    let flush = section("flush")?;
    let timings = section("timings_micros")?;
    let lint = match value.get("lint") {
        None | Some(Json::Null) => None,
        Some(lint) => {
            let lines = lint
                .get("lines")
                .and_then(Json::as_arr)
                .ok_or("missing lint \"lines\"")?
                .iter()
                .map(|l| l.as_str().map(str::to_owned).ok_or("non-string lint line"))
                .collect::<Result<Vec<_>, _>>()?;
            Some(LintSummary {
                errors: uint(lint, "errors")?,
                warnings: uint(lint, "warnings")?,
                infos: uint(lint, "infos")?,
                lines,
            })
        }
    };
    Ok(CachedResult {
        canonical,
        nodes: uint(&value, "nodes")?,
        instrs: uint(&value, "instrs")?,
        points: uint(&value, "points")?,
        edges_split: uint(&value, "edges_split")?,
        init: InitStats {
            assignments_decomposed: uint(init, "assignments_decomposed")?,
            condition_sides_extracted: uint(init, "condition_sides_extracted")?,
        },
        motion: MotionStats {
            rounds: uint(motion, "rounds")?,
            eliminated: uint(motion, "eliminated")?,
            inserted: uint(motion, "inserted")?,
            removed: uint(motion, "removed")?,
            iterations: uint64(motion, "iterations")?,
            worklist_pushes: uint64(motion, "worklist_pushes")?,
            converged,
        },
        flush: FlushStats {
            instances_removed: uint(flush, "instances_removed")?,
            inserted: uint(flush, "inserted")?,
            reconstructed: uint(flush, "reconstructed")?,
            iterations: uint64(flush, "iterations")?,
            worklist_pushes: uint64(flush, "worklist_pushes")?,
            max_worklist_len: uint(flush, "max_worklist_len")?,
        },
        timings: PhaseTimings {
            split: Duration::from_micros(uint64(timings, "split")?),
            init: Duration::from_micros(uint64(timings, "init")?),
            motion: Duration::from_micros(uint64(timings, "motion")?),
            flush: Duration::from_micros(uint64(timings, "flush")?),
        },
        lint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tag: &str) -> CachedResult {
        CachedResult {
            canonical: format!("start 1\nend 1\nnode 1 {{\n  out({tag})\n}}\n"),
            nodes: 3,
            instrs: 9,
            points: 15,
            init: InitStats {
                assignments_decomposed: 4,
                condition_sides_extracted: 1,
            },
            motion: MotionStats {
                rounds: 2,
                eliminated: 3,
                inserted: 2,
                removed: 5,
                iterations: 88,
                worklist_pushes: 120,
                converged: true,
            },
            flush: FlushStats {
                instances_removed: 1,
                inserted: 1,
                reconstructed: 0,
                iterations: 30,
                worklist_pushes: 41,
                max_worklist_len: 7,
            },
            edges_split: 2,
            timings: PhaseTimings {
                split: Duration::from_micros(11),
                init: Duration::from_micros(22),
                motion: Duration::from_micros(3300),
                flush: Duration::from_micros(440),
            },
            lint: Some(LintSummary {
                errors: 0,
                warnings: 2,
                infos: 1,
                lines: vec!["warn: \"quoted\"".to_owned(), "info: plain".to_owned()],
            }),
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("am-serve-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn assert_entries_eq(a: &CachedResult, b: &CachedResult) {
        assert_eq!(a.canonical, b.canonical);
        assert_eq!(
            (a.nodes, a.instrs, a.points, a.edges_split),
            (b.nodes, b.instrs, b.points, b.edges_split)
        );
        assert_eq!(a.init, b.init);
        assert_eq!(a.motion, b.motion);
        assert_eq!(a.flush, b.flush);
        assert_eq!(a.timings, b.timings);
        match (&a.lint, &b.lint) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(
                    (x.errors, x.warnings, x.infos),
                    (y.errors, y.warnings, y.infos)
                );
                assert_eq!(x.lines, y.lines);
            }
            other => panic!("lint mismatch: {other:?}"),
        }
    }

    #[test]
    fn entries_round_trip_with_every_field() {
        let original = sample("x");
        let decoded = decode_entry(&encode_entry(&original)).unwrap();
        assert_entries_eq(&original, &decoded);

        let mut bare = sample("y");
        bare.lint = None;
        let decoded = decode_entry(&encode_entry(&bare)).unwrap();
        assert!(decoded.lint.is_none());
    }

    #[test]
    fn store_load_survives_reopen() {
        let root = temp_root("reopen");
        let config = DiskCacheConfig::new(&root);
        {
            let cache = DiskCache::open(&config).unwrap();
            cache.store(0xabc1, &sample("a"));
            cache.store(0xabc2, &sample("b"));
            cache.flush_index().unwrap();
            assert_eq!(cache.snapshot().entries, 2);
        }
        let cache = DiskCache::open(&config).unwrap();
        assert_eq!(cache.snapshot().entries, 2, "scan found both entries");
        assert_entries_eq(&cache.load(0xabc1).unwrap(), &sample("a"));
        assert!(cache.load(0xdead).is_none());
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_deleted_and_miss() {
        let root = temp_root("corrupt");
        let config = DiskCacheConfig::new(&root);
        let cache = DiskCache::open(&config).unwrap();
        cache.store(0x77, &sample("a"));
        let path = cache.path_of(0x77);
        fs::write(&path, "{ not json").unwrap();
        assert!(cache.load(0x77).is_none(), "corrupt entry is a miss");
        assert!(!path.exists(), "corrupt entry was deleted");
        assert_eq!(cache.snapshot().load_errors, 1);
        // The slot heals: a later store re-creates it.
        cache.store(0x77, &sample("a"));
        assert!(cache.load(0x77).is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let root = temp_root("budget");
        let entry_bytes = encode_entry(&sample("a")).len() as u64;
        let config = DiskCacheConfig {
            root: root.clone(),
            // Room for two entries, not three.
            budget_bytes: entry_bytes * 2 + entry_bytes / 2,
        };
        let cache = DiskCache::open(&config).unwrap();
        cache.store(1, &sample("a"));
        cache.store(2, &sample("a"));
        assert!(cache.load(1).is_some(), "warm entry 1; 2 is now coldest");
        cache.store(3, &sample("a"));
        let snap = cache.snapshot();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.entries, 2);
        assert!(cache.load(2).is_none(), "coldest entry evicted");
        assert!(cache.load(1).is_some());
        assert!(cache.load(3).is_some());
        assert!(snap.bytes <= config.budget_bytes);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn index_preserves_lru_order_across_restarts() {
        let root = temp_root("index");
        let entry_bytes = encode_entry(&sample("a")).len() as u64;
        let config = DiskCacheConfig {
            root: root.clone(),
            budget_bytes: entry_bytes * 2 + entry_bytes / 2,
        };
        {
            let cache = DiskCache::open(&config).unwrap();
            cache.store(1, &sample("a"));
            cache.store(2, &sample("a"));
            // Touch 1 so 2 is coldest, then shut down gracefully.
            assert!(cache.load(1).is_some());
            cache.flush_index().unwrap();
        }
        let cache = DiskCache::open(&config).unwrap();
        cache.store(3, &sample("a"));
        assert!(cache.load(2).is_none(), "restored recency evicted 2, not 1");
        assert!(cache.load(1).is_some());
        let _ = fs::remove_dir_all(&root);
    }
}
