//! The optimization server.
//!
//! One accept loop, one reader thread per connection, and a shared worker
//! pool over a single [`am_pipeline::Pipeline`] engine — so every
//! connection shares the in-memory result cache, and (when configured)
//! the persistent [`DiskCache`] tier underneath it.
//!
//! Scheduling is fair by construction: each connection owns a bounded
//! queue (overflow is answered with `busy`, not buffered), and workers
//! take jobs round-robin across connections, so a client streaming
//! thousands of programs cannot starve one submitting a single job.
//!
//! Identical concurrent work is **coalesced**: jobs are keyed by the
//! input's stable hash, and a job whose hash is already being optimized
//! parks behind that leader instead of burning a worker; when the leader
//! finishes, every parked follower is answered from the same result
//! (reported as source `coalesced`).
//!
//! Shutdown is graceful: the `shutdown` request stops intake, drains
//! every queued and in-flight job (responses still go out), flushes the
//! disk-cache index, and only then acknowledges.

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use am_ir::alpha::stable_hash;
use am_ir::FlowGraph;
use am_lang::compile_source;
use am_obs::promtext::Registry;
use am_obs::{httpx, TraceEntry, TraceRing};
use am_pipeline::{OptimizedJob, Pipeline, PipelineConfig, ResultSource, SecondaryCache};
use am_trace::Tracer;

use crate::diskcache::{DiskCache, DiskCacheConfig};
use crate::metrics::Metrics;
use crate::net::{Endpoint, NetListener, NetStream};
use crate::proto::{self, write_frame, Envelope, Request, ResultPayload, StatsSnapshot};

/// How often blocked loops (accept, reads, idle workers) re-check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(50);
/// Per-connection socket read timeout; bounds how long a reader thread
/// can ignore the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Worker threads; 0 uses [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Per-connection queue bound; a submit past it is answered `busy`.
    pub queue_depth: usize,
    /// In-memory result-cache capacity, entries.
    pub cache_capacity: usize,
    /// Persistent cache tier; `None` runs memory-only.
    pub disk: Option<DiskCacheConfig>,
    /// Motion-round budget per job (`None`: the paper's quadratic bound).
    pub max_motion_rounds: Option<usize>,
    /// Lint freshly optimized programs and report counts in results.
    pub lint: bool,
    /// Trace sink: per-connection spans, per-request spans and `serve`
    /// counters (see `docs/SERVICE.md`).
    pub tracer: Tracer,
    /// Optional second listener serving Prometheus text exposition over
    /// HTTP (`GET /metrics`, plus `/healthz`); `None` disables it.
    pub metrics: Option<Endpoint>,
    /// Request-trace ring capacity: how many completed traced requests
    /// `trace-tail` can look back on.
    pub trace_ring: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".to_owned()),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 1024,
            disk: None,
            max_motion_rounds: None,
            lint: false,
            tracer: Tracer::disabled(),
            metrics: None,
            trace_ring: 256,
        }
    }
}

struct ConnState {
    id: u64,
    writer: Mutex<NetStream>,
}

impl ConnState {
    /// Writes one response frame. Best-effort: a vanished client only
    /// costs the bytes.
    fn send(&self, payload: &str) {
        let mut writer = self.writer.lock().unwrap();
        let _ = write_frame(&mut *writer, payload);
    }
}

struct PendingJob {
    id: u64,
    name: String,
    hash: u64,
    graph: FlowGraph,
    /// Client-generated trace id; requests carrying one land in the ring.
    trace: Option<String>,
    conn: Arc<ConnState>,
    /// Enqueue time until pickup, then reset to service start.
    clock: Instant,
    /// Filled at pickup: how long the job waited in its queue.
    queue_micros: u64,
}

#[derive(Default)]
struct Dispatch {
    /// Per-connection FIFO queues.
    queues: HashMap<u64, VecDeque<PendingJob>>,
    /// Round-robin order over connections with queued work (each id at
    /// most once; stale ids are skipped on pop).
    order: VecDeque<u64>,
    /// Program hash → followers parked behind the in-flight leader.
    inflight: HashMap<u64, Vec<PendingJob>>,
    /// Jobs waiting in queues.
    queued: usize,
    /// Jobs parked behind a leader.
    parked: usize,
    /// Leader jobs currently on a worker.
    active: usize,
}

impl Dispatch {
    fn outstanding(&self) -> usize {
        self.queued + self.parked + self.active
    }

    /// Pops the next job, round-robin across connections.
    fn pop_next(&mut self) -> Option<PendingJob> {
        while let Some(conn_id) = self.order.pop_front() {
            let Some(queue) = self.queues.get_mut(&conn_id) else {
                continue; // connection closed, queue dropped
            };
            let Some(job) = queue.pop_front() else {
                continue;
            };
            if !queue.is_empty() {
                self.order.push_back(conn_id);
            }
            self.queued -= 1;
            return Some(job);
        }
        None
    }
}

struct Shared {
    pipeline: Pipeline,
    disk: Option<Arc<DiskCache>>,
    metrics: Metrics,
    ring: TraceRing,
    started: Instant,
    dispatch: Mutex<Dispatch>,
    work_ready: Condvar,
    drained: Condvar,
    shutdown: AtomicBool,
    tracer: Tracer,
    queue_depth: usize,
    workers: usize,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let queued = self.dispatch.lock().unwrap().queued as u64;
        self.metrics.snapshot(
            self.workers as u64,
            queued,
            self.pipeline.cache().stats(),
            self.disk.as_ref().map(|d| d.snapshot()),
        )
    }

    /// Links one completed (or rejected) traced request into the ring.
    #[allow(clippy::too_many_arguments)]
    fn record_trace(
        &self,
        trace: &Option<String>,
        name: &str,
        source: &str,
        queue_micros: u64,
        service_micros: u64,
        phases: Option<[u64; 4]>,
        conn: u64,
    ) {
        let Some(trace_id) = trace else { return };
        self.ring.push(TraceEntry {
            trace_id: trace_id.clone(),
            name: name.to_owned(),
            source: source.to_owned(),
            queue_micros,
            service_micros,
            phases,
            conn,
            ts_micros: self.started.elapsed().as_micros() as u64,
        });
    }

    /// The full Prometheus text exposition: request/latency families from
    /// [`Metrics`], plus the populations and cache tiers only the server
    /// knows.
    fn prometheus(&self) -> String {
        let mut r = Registry::new();
        self.metrics.export(&mut r);
        r.gauge("am_workers", "Worker threads.", &[], self.workers as f64);
        let queued = self.dispatch.lock().unwrap().queued;
        r.gauge(
            "am_queue_depth",
            "Jobs sitting in dispatch queues now.",
            &[],
            queued as f64,
        );
        let mem = self.pipeline.cache().stats();
        let mut tier = |name: &str, hits: u64, misses: u64, evictions: u64, entries: u64| {
            let labels = &[("tier", name)];
            r.counter("am_cache_hits_total", "Cache lookup hits.", labels, hits);
            r.counter(
                "am_cache_misses_total",
                "Cache lookup misses.",
                labels,
                misses,
            );
            r.counter(
                "am_cache_evictions_total",
                "Cache evictions.",
                labels,
                evictions,
            );
            r.gauge(
                "am_cache_entries",
                "Cache entries resident.",
                labels,
                entries as f64,
            );
        };
        tier(
            "memory",
            mem.hits,
            mem.misses,
            mem.evictions,
            mem.entries as u64,
        );
        if let Some(disk) = &self.disk {
            let d = disk.snapshot();
            tier("disk", d.hits, d.misses, d.evictions, d.entries);
        }
        r.gauge(
            "am_trace_ring_entries",
            "Request traces held in the ring.",
            &[],
            self.ring.len() as f64,
        );
        r.counter(
            "am_trace_ring_dropped_total",
            "Request traces evicted from the ring.",
            &[],
            self.ring.dropped(),
        );
        r.render()
    }

    fn notify_if_drained(&self, dispatch: &Dispatch) {
        if dispatch.outstanding() == 0 {
            self.drained.notify_all();
        }
    }
}

/// A bound, not-yet-running server. [`Server::bind`] resolves the
/// endpoint (so port 0 becomes a real port before any client races the
/// accept loop); [`Server::run`] serves until a `shutdown` request
/// drains it.
pub struct Server {
    shared: Arc<Shared>,
    listener: NetListener,
    endpoint: Endpoint,
    metrics_listener: Option<NetListener>,
    metrics_endpoint: Option<Endpoint>,
}

impl Server {
    /// Opens the persistent cache (if configured), builds the engine, and
    /// binds the listening socket.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let disk = match &config.disk {
            Some(disk_config) => Some(Arc::new(DiskCache::open(disk_config)?)),
            None => None,
        };
        let pipeline = Pipeline::new(PipelineConfig {
            workers: Some(1), // the server brings its own pool
            cache_capacity: config.cache_capacity,
            max_motion_rounds: config.max_motion_rounds,
            verify: false,
            prove: false,
            lint: config.lint,
            tracer: config.tracer.clone(),
            secondary: disk
                .as_ref()
                .map(|d| Arc::clone(d) as Arc<dyn SecondaryCache>),
        });
        let (listener, endpoint) = NetListener::bind(&config.endpoint)?;
        let (metrics_listener, metrics_endpoint) = match &config.metrics {
            Some(ep) => {
                let (l, bound) = NetListener::bind(ep)?;
                (Some(l), Some(bound))
            }
            None => (None, None),
        };
        let workers = if config.workers == 0 {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        Ok(Server {
            shared: Arc::new(Shared {
                pipeline,
                disk,
                metrics: Metrics::new(),
                ring: TraceRing::new(config.trace_ring),
                started: Instant::now(),
                dispatch: Mutex::new(Dispatch::default()),
                work_ready: Condvar::new(),
                drained: Condvar::new(),
                shutdown: AtomicBool::new(false),
                tracer: config.tracer,
                queue_depth: config.queue_depth.max(1),
                workers,
            }),
            listener,
            endpoint,
            metrics_listener,
            metrics_endpoint,
        })
    }

    /// The endpoint actually bound (real port for TCP port 0).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The metrics endpoint actually bound, when `--metrics` was given.
    pub fn metrics_endpoint(&self) -> Option<&Endpoint> {
        self.metrics_endpoint.as_ref()
    }

    /// Serves until a client's `shutdown` request drains the server. All
    /// threads are joined before returning; a unix socket file is removed
    /// on the way out.
    pub fn run(self) -> io::Result<()> {
        let shared = &self.shared;
        let mut workers = Vec::with_capacity(shared.workers);
        for _ in 0..shared.workers {
            let shared = Arc::clone(shared);
            workers.push(thread::spawn(move || worker_loop(&shared)));
        }
        let metrics_thread = match self.metrics_listener {
            Some(listener) => {
                listener.set_nonblocking(true)?;
                let shared = Arc::clone(shared);
                Some(thread::spawn(move || metrics_loop(&shared, &listener)))
            }
            None => None,
        };
        self.listener.set_nonblocking(true)?;
        let mut handlers = Vec::new();
        let mut next_conn_id = 1u64;
        let result = loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok(stream) => {
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    let shared = Arc::clone(shared);
                    handlers.push(thread::spawn(move || {
                        handle_connection(&shared, stream, conn_id)
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.work_ready.notify_all();
        for handle in handlers {
            let _ = handle.join();
        }
        for handle in workers {
            let _ = handle.join();
        }
        if let Some(handle) = metrics_thread {
            let _ = handle.join();
        }
        if let Some(disk) = &shared.disk {
            let _ = disk.flush_index();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        #[cfg(unix)]
        if let Some(Endpoint::Unix(path)) = &self.metrics_endpoint {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

/// The metrics listener: one short HTTP exchange per connection
/// (`/metrics` renders the Prometheus exposition, `/healthz` answers
/// liveness), polled so the shutdown flag stops it with the rest of the
/// server.
fn metrics_loop(shared: &Arc<Shared>, listener: &NetListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                // Per-exchange thread: a stalled scraper must not block
                // the next scrape.
                thread::spawn(move || serve_metrics_exchange(&shared, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn serve_metrics_exchange(shared: &Shared, mut stream: NetStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Some(request) = httpx::read_request(&mut stream) else {
        return;
    };
    let path = request.path.split('?').next().unwrap_or("");
    let _ = if request.method != "GET" {
        httpx::write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        )
    } else {
        match path {
            "/metrics" => httpx::write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &shared.prometheus(),
            ),
            "/healthz" => httpx::write_response(&mut stream, "200 OK", "text/plain", "ok\n"),
            _ => httpx::write_response(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "try /metrics or /healthz\n",
            ),
        }
    };
}

fn handle_connection(shared: &Arc<Shared>, mut stream: NetStream, conn_id: u64) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnState {
        id: conn_id,
        writer: Mutex::new(writer),
    });
    shared.metrics.connection_opened();
    let mut span = shared.tracer.span("conn", "session");
    let mut requests = 0i64;
    // Whether the peer went away (vs. us breaking for shutdown): a dead
    // client's queued jobs are dropped, a live client's are drained.
    let mut client_gone = false;
    loop {
        match proto::read_frame(&mut stream) {
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) | Ok(None) => {
                client_gone = true;
                break;
            }
            Ok(Some(payload)) => {
                requests += 1;
                match proto::parse_request(&payload) {
                    Err((id, message)) => {
                        shared.metrics.request_error();
                        shared.tracer.counter("serve", "error", &[("count", 1)]);
                        conn.send(&proto::encode_error(id.unwrap_or(0), &message));
                    }
                    Ok(envelope) => {
                        if !handle_request(shared, &conn, envelope) {
                            break;
                        }
                    }
                }
            }
        }
    }
    if client_gone {
        let mut dispatch = shared.dispatch.lock().unwrap();
        if let Some(queue) = dispatch.queues.remove(&conn_id) {
            dispatch.queued -= queue.len();
        }
        shared.notify_if_drained(&dispatch);
    }
    shared.metrics.connection_closed();
    span.arg("requests", requests);
}

/// Handles one request; returns `false` when the reader should stop
/// (shutdown acknowledged).
fn handle_request(shared: &Arc<Shared>, conn: &Arc<ConnState>, envelope: Envelope) -> bool {
    let id = envelope.id;
    match envelope.request {
        Request::Ping => {
            shared.metrics.ping();
            conn.send(&proto::encode_ok(id));
            true
        }
        Request::Stats => {
            shared.metrics.stats_request();
            let snapshot = shared.snapshot();
            conn.send(&proto::encode_stats(id, &snapshot));
            true
        }
        Request::Shutdown => {
            initiate_shutdown(shared);
            conn.send(&proto::encode_ok(id));
            false
        }
        Request::TraceTail { limit } => {
            shared.metrics.stats_request();
            let entries = shared.ring.tail(limit as usize);
            conn.send(&proto::encode_trace(id, &entries, shared.ring.dropped()));
            true
        }
        Request::Optimize(req) => {
            let graph = match compile_source(req.kind, &req.text) {
                Ok(graph) => graph,
                Err(e) => {
                    shared.metrics.request_error();
                    shared.tracer.counter("serve", "error", &[("count", 1)]);
                    shared.record_trace(&req.trace, &req.name, "error", 0, 0, None, conn.id);
                    conn.send(&proto::encode_error(id, &format!("{}: {e}", req.name)));
                    return true;
                }
            };
            let hash = stable_hash(&graph);
            let mut dispatch = shared.dispatch.lock().unwrap();
            // Checked under the dispatch lock so a job can never slip in
            // after the drain condition was observed true.
            if shared.shutdown.load(Ordering::SeqCst) {
                drop(dispatch);
                shared.metrics.request_error();
                conn.send(&proto::encode_error(id, "server is shutting down"));
                return true;
            }
            let queue = dispatch.queues.entry(conn.id).or_default();
            if queue.len() >= shared.queue_depth {
                let queued = queue.len() as u64;
                drop(dispatch);
                shared.metrics.rejected_busy();
                shared.tracer.counter("serve", "busy", &[("count", 1)]);
                shared.record_trace(&req.trace, &req.name, "busy", 0, 0, None, conn.id);
                conn.send(&proto::encode_busy(id, queued, shared.queue_depth as u64));
                return true;
            }
            let was_empty = queue.is_empty();
            queue.push_back(PendingJob {
                id,
                name: req.name,
                hash,
                graph,
                trace: req.trace,
                conn: Arc::clone(conn),
                clock: Instant::now(),
                queue_micros: 0,
            });
            if was_empty {
                dispatch.order.push_back(conn.id);
            }
            dispatch.queued += 1;
            let depth = dispatch.queued as u64;
            drop(dispatch);
            shared.metrics.optimize_enqueued(depth);
            shared.work_ready.notify_one();
            true
        }
    }
}

/// Stops intake, waits for every outstanding job to be answered, then
/// flushes the persistent cache index. The caller acknowledges after this
/// returns, so the `ok` is a completed-drain receipt.
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.work_ready.notify_all();
    let mut dispatch = shared.dispatch.lock().unwrap();
    while dispatch.outstanding() > 0 {
        let (guard, _) = shared
            .drained
            .wait_timeout(dispatch, Duration::from_millis(100))
            .unwrap();
        dispatch = guard;
    }
    drop(dispatch);
    if let Some(disk) = &shared.disk {
        let _ = disk.flush_index();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut dispatch = shared.dispatch.lock().unwrap();
    loop {
        if let Some(mut job) = dispatch.pop_next() {
            job.queue_micros = job.clock.elapsed().as_micros() as u64;
            job.clock = Instant::now();
            // Single-flight: identical in-flight work parks behind the
            // leader instead of occupying this worker.
            if let Some(followers) = dispatch.inflight.get_mut(&job.hash) {
                followers.push(job);
                dispatch.parked += 1;
                continue;
            }
            dispatch.inflight.insert(job.hash, Vec::new());
            dispatch.active += 1;
            drop(dispatch);
            process_leader(shared, job);
            dispatch = shared.dispatch.lock().unwrap();
            dispatch.active -= 1;
            shared.notify_if_drained(&dispatch);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Nothing queued; parked jobs belong to an active leader.
            break;
        }
        let (guard, _) = shared
            .work_ready
            .wait_timeout(dispatch, Duration::from_millis(100))
            .unwrap();
        dispatch = guard;
    }
}

fn process_leader(shared: &Shared, job: PendingJob) {
    let mut span = shared.tracer.span("request", "optimize");
    span.arg("queue_micros", job.queue_micros as i64);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        shared.pipeline.optimize_graph(&job.graph)
    }));
    let followers = {
        let mut dispatch = shared.dispatch.lock().unwrap();
        let followers = dispatch.inflight.remove(&job.hash).unwrap_or_default();
        dispatch.parked -= followers.len();
        followers
        // Not drained yet: this leader still counts as active until the
        // worker loop reacquires the lock, which is after every response
        // below has been written.
    };
    span.arg("followers", followers.len() as i64);
    match outcome {
        Ok(out) => {
            if out.source == ResultSource::Fresh {
                shared.metrics.phase_timings([
                    out.timings.split.as_micros() as u64,
                    out.timings.init.as_micros() as u64,
                    out.timings.motion.as_micros() as u64,
                    out.timings.flush.as_micros() as u64,
                ]);
            }
            shared.tracer.counter(
                "serve",
                "source",
                &[
                    (out.source.label(), 1),
                    ("coalesced", followers.len() as i64),
                ],
            );
            answer(shared, &job, &out, out.source.label(), false);
            for follower in &followers {
                answer(shared, follower, &out, "coalesced", true);
            }
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            let count = 1 + followers.len() as i64;
            shared.tracer.counter("serve", "error", &[("count", count)]);
            for failed in std::iter::once(&job).chain(&followers) {
                shared.metrics.request_error();
                shared.record_trace(
                    &failed.trace,
                    &failed.name,
                    "error",
                    failed.queue_micros,
                    failed.clock.elapsed().as_micros() as u64,
                    None,
                    failed.conn.id,
                );
                failed.conn.send(&proto::encode_error(
                    failed.id,
                    &format!("{}: optimizer panicked: {message}", failed.name),
                ));
            }
        }
    }
}

fn answer(shared: &Shared, job: &PendingJob, out: &OptimizedJob, source: &str, coalesced: bool) {
    let service_micros = job.clock.elapsed().as_micros() as u64;
    let r = &out.result;
    let payload = ResultPayload {
        name: job.name.clone(),
        hash: format!("{:016x}", job.hash),
        source: source.to_owned(),
        canonical: r.canonical.clone(),
        nodes: r.nodes as u64,
        instrs: r.instrs as u64,
        points: r.points as u64,
        edges_split: r.edges_split as u64,
        rounds: r.motion.rounds as u64,
        converged: r.motion.converged,
        eliminated: r.motion.eliminated as u64,
        inserted: r.motion.inserted as u64,
        removed: r.motion.removed as u64,
        iterations: r.motion.iterations + r.flush.iterations,
        lint_errors: r.lint.as_ref().map_or(0, |l| l.errors as u64),
        lint_warnings: r.lint.as_ref().map_or(0, |l| l.warnings as u64),
        queue_micros: job.queue_micros,
        service_micros,
    };
    job.conn.send(&proto::encode_result(job.id, &payload));
    // Phase spans only for the run that actually executed the optimizer;
    // cache hits and coalesced riders carry the flat request span alone.
    let phases = (!coalesced && out.source == ResultSource::Fresh).then_some([
        out.timings.split.as_micros() as u64,
        out.timings.init.as_micros() as u64,
        out.timings.motion.as_micros() as u64,
        out.timings.flush.as_micros() as u64,
    ]);
    shared.record_trace(
        &job.trace,
        &job.name,
        source,
        job.queue_micros,
        service_micros,
        phases,
        job.conn.id,
    );
    shared.metrics.optimize_answered(
        out.source,
        coalesced,
        job.queue_micros,
        job.queue_micros + service_micros,
    );
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
