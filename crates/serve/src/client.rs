//! The client library `amclient` and `bench_service` are built on.
//!
//! One connection, client-assigned request ids, and support for
//! pipelining: [`Client::submit`] sends without waiting, [`Client::recv`]
//! returns the next response whatever its id, and the synchronous
//! helpers ([`Client::ping`], [`Client::optimize`], …) wait for their own
//! id while buffering any other responses for a later `recv`.

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::time::{SystemTime, UNIX_EPOCH};

use am_lang::SourceKind;
use am_obs::TraceEntry;

use crate::net::{Endpoint, NetStream};
use crate::proto::{self, Envelope, OptimizeRequest, Reply, Request, StatsSnapshot};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or the server closed the connection).
    Io(io::Error),
    /// The peer spoke something that isn't the protocol.
    Protocol(String),
    /// The server answered, but with `error`.
    Server(String),
    /// The server answered `busy` (per-connection queue full).
    Busy {
        /// Jobs already queued for this connection.
        queued: u64,
        /// The server's per-connection limit.
        limit: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Busy { queued, limit } => {
                write!(
                    f,
                    "server busy: {queued}/{limit} jobs queued on this connection"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client.
pub struct Client {
    stream: NetStream,
    next_id: u64,
    /// Per-connection trace-id prefix; see [`Client::next_trace_id`].
    trace_prefix: u32,
    /// Responses read while waiting for a different id.
    buffered: VecDeque<(u64, Reply)>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        Ok(Client {
            stream: NetStream::connect(endpoint)?,
            next_id: 1,
            trace_prefix: nanos ^ std::process::id().rotate_left(16),
            buffered: VecDeque::new(),
        })
    }

    /// The trace id for the next request: 16 hex digits, a per-connection
    /// prefix (clock entropy mixed with the pid) followed by the request
    /// id, so ids are unique across concurrent clients *and* sortable
    /// within one connection's `trace-tail` output.
    fn next_trace_id(&self) -> String {
        format!("{:08x}{:08x}", self.trace_prefix, self.next_id as u32)
    }

    fn send(&mut self, request: Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = proto::encode_request(&Envelope { id, request });
        proto::write_frame(&mut self.stream, &payload)?;
        Ok(id)
    }

    /// Sends an `optimize` without waiting for the response; returns the
    /// request id to match against [`Client::recv`]. Pipelining requests
    /// this way keeps the server's workers busy with one connection.
    ///
    /// Every submit carries a generated trace id, so the request is
    /// observable in the server's `trace-tail` ring.
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        kind: SourceKind,
        text: impl Into<String>,
    ) -> io::Result<u64> {
        let trace = Some(self.next_trace_id());
        self.send(Request::Optimize(OptimizeRequest {
            name: name.into(),
            kind,
            text: text.into(),
            trace,
        }))
    }

    /// Returns the next response — a buffered one if a synchronous helper
    /// read past it, otherwise the next frame off the wire (blocking).
    pub fn recv(&mut self) -> Result<(u64, Reply), ClientError> {
        if let Some(ready) = self.buffered.pop_front() {
            return Ok(ready);
        }
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<(u64, Reply), ClientError> {
        let payload = proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        proto::parse_response(&payload).map_err(ClientError::Protocol)
    }

    /// Reads until the response for `id` arrives, buffering others.
    fn wait_for(&mut self, id: u64) -> Result<Reply, ClientError> {
        if let Some(at) = self.buffered.iter().position(|(rid, _)| *rid == id) {
            return Ok(self.buffered.remove(at).expect("position exists").1);
        }
        loop {
            let (rid, reply) = self.read_reply()?;
            if rid == id {
                return Ok(reply);
            }
            self.buffered.push_back((rid, reply));
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.send(Request::Ping)?;
        match self.wait_for(id)? {
            Reply::Ok => Ok(()),
            Reply::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to ping: {other:?}"
            ))),
        }
    }

    /// Optimizes one program, waiting for the result.
    pub fn optimize(
        &mut self,
        name: impl Into<String>,
        kind: SourceKind,
        text: impl Into<String>,
    ) -> Result<proto::ResultPayload, ClientError> {
        let id = self.submit(name, kind, text)?;
        match self.wait_for(id)? {
            Reply::Result(result) => Ok(*result),
            Reply::Busy { queued, limit } => Err(ClientError::Busy { queued, limit }),
            Reply::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to optimize: {other:?}"
            ))),
        }
    }

    /// Fetches live server metrics.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let id = self.send(Request::Stats)?;
        match self.wait_for(id)? {
            Reply::Stats(snapshot) => Ok(*snapshot),
            Reply::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to stats: {other:?}"
            ))),
        }
    }

    /// Fetches the newest completed request traces: up to `limit`
    /// entries, oldest first, plus how many the ring has evicted.
    pub fn trace_tail(&mut self, limit: u64) -> Result<(Vec<TraceEntry>, u64), ClientError> {
        let id = self.send(Request::TraceTail { limit })?;
        match self.wait_for(id)? {
            Reply::Trace { entries, dropped } => Ok((entries, dropped)),
            Reply::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to trace-tail: {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and stop; returns once the drain has
    /// completed and been acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.send(Request::Shutdown)?;
        match self.wait_for(id)? {
            Reply::Ok => Ok(()),
            Reply::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to shutdown: {other:?}"
            ))),
        }
    }
}
