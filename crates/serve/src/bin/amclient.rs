//! `amclient`: command-line client for the `amserve` daemon.
//!
//! Submits programs (files, or the built-in 80-program corpus) over one
//! pipelined connection, prints per-job results in submission order, and
//! can assert a minimum cache-hit rate — which is how CI checks that a
//! second pass over the same corpus is served from the cache.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use am_lang::SourceKind;
use am_obs::httpx;
use am_serve::client::{Client, ClientError};
use am_serve::net::{Endpoint, NetStream};
use am_serve::proto::{self, Reply, ResultPayload};

fn usage() -> ! {
    eprintln!("usage: amclient [--connect EP] COMMAND");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  ping                     liveness probe");
    eprintln!("  stats [--json]           print live server metrics (--json: am-stats/v1");
    eprintln!("                           document, pipeable into amstat)");
    eprintln!("  metrics                  dump the Prometheus exposition (--connect is the");
    eprintln!("                           server's *metrics* endpoint)");
    eprintln!("  trace-tail [--limit N]   print the newest traced requests as span trees");
    eprintln!("                           (default 16)");
    eprintln!("  shutdown                 drain the server and stop it");
    eprintln!("  optimize [FILES...]      submit .wl/.ir files (or --corpus)");
    eprintln!();
    eprintln!("optimize options:");
    eprintln!("  --corpus                 submit the built-in 80-program corpus");
    eprintln!("  --repeat N               submit the job list N times (default 1)");
    eprintln!("  --window N               max pipelined in-flight requests (default 32)");
    eprintln!("  --emit DIR               write each optimized program to DIR/<name>.out");
    eprintln!("  --expect-hit-rate PCT    exit 1 unless >= PCT%% of results were cached");
    eprintln!("  --quiet                  summary only, no per-job lines");
    eprintln!();
    eprintln!("--connect accepts tcp://HOST:PORT, unix://PATH, HOST:PORT or a socket path");
    eprintln!("(default tcp://127.0.0.1:7345).");
    std::process::exit(2);
}

fn fmt_micros(micros: u64) -> String {
    if micros >= 10_000 {
        format!("{:.2}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}us")
    }
}

struct OptimizeOptions {
    jobs: Vec<(String, SourceKind, String)>,
    repeat: usize,
    window: usize,
    emit: Option<String>,
    expect_hit_rate: Option<f64>,
    quiet: bool,
}

fn load_jobs(files: &[String], corpus: bool) -> Result<Vec<(String, SourceKind, String)>, String> {
    let mut jobs = Vec::new();
    for path in files {
        let kind = SourceKind::from_path(std::path::Path::new(path))
            .ok_or_else(|| format!("{path}: unknown file type (expected .wl or .ir)"))?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        jobs.push((path.clone(), kind, text));
    }
    if corpus {
        for (name, graph) in am_ir::random::corpus80() {
            jobs.push((name, SourceKind::Ir, am_ir::text::to_text(&graph)));
        }
    }
    if jobs.is_empty() {
        return Err("nothing to submit (give FILES or --corpus)".to_owned());
    }
    Ok(jobs)
}

/// Submits every job with up to `window` requests in flight; returns the
/// results in submission order. `busy` responses are retried after the
/// window drains — backpressure, not failure.
fn run_optimize(client: &mut Client, options: &OptimizeOptions) -> Result<ExitCode, String> {
    let total = options.jobs.len() * options.repeat;
    let mut results: Vec<Option<ResultPayload>> = (0..total).map(|_| None).collect();
    let mut errors = 0usize;
    let started = Instant::now();
    let mut in_flight: HashMap<u64, usize> = HashMap::new();
    let mut retry: Vec<usize> = Vec::new();
    let mut next = 0usize;

    let job_of = |slot: usize| &options.jobs[slot % options.jobs.len()];
    while next < total || !in_flight.is_empty() || !retry.is_empty() {
        // Fill the window, preferring retries (they were bounced by
        // backpressure and the server has drained since).
        while in_flight.len() < options.window {
            let Some(slot) = retry.pop().or_else(|| {
                (next < total).then(|| {
                    next += 1;
                    next - 1
                })
            }) else {
                break;
            };
            let (name, kind, text) = job_of(slot);
            let id = client
                .submit(name.clone(), *kind, text.clone())
                .map_err(|e| format!("submit: {e}"))?;
            in_flight.insert(id, slot);
        }
        if in_flight.is_empty() {
            break;
        }
        let (id, reply) = client.recv().map_err(|e| format!("recv: {e}"))?;
        let Some(slot) = in_flight.remove(&id) else {
            return Err(format!("response for unknown request id {id}"));
        };
        match reply {
            Reply::Result(result) => results[slot] = Some(*result),
            Reply::Busy { .. } => retry.push(slot),
            Reply::Error { message } => {
                errors += 1;
                eprintln!("amclient: {message}");
            }
            other => return Err(format!("unexpected reply: {other:?}")),
        }
    }
    let wall = started.elapsed();

    let mut by_source: HashMap<&str, usize> = HashMap::new();
    let done = results.iter().flatten().count();
    for (slot, result) in results.iter().enumerate() {
        let Some(r) = result else { continue };
        *by_source
            .entry(
                ["fresh", "memory", "disk", "coalesced"]
                    .iter()
                    .find(|s| **s == r.source)
                    .copied()
                    .unwrap_or("other"),
            )
            .or_insert(0) += 1;
        if !options.quiet {
            println!(
                "{:<28} {:<9} hash={} rounds={} eliminated={} queue={} service={}",
                r.name,
                r.source,
                r.hash,
                r.rounds,
                r.eliminated,
                fmt_micros(r.queue_micros),
                fmt_micros(r.service_micros),
            );
        }
        if let Some(dir) = &options.emit {
            let safe: String = r
                .name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = std::path::Path::new(dir).join(format!("{safe}.{slot:05}.out"));
            std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
            std::fs::write(&path, &r.canonical).map_err(|e| format!("{}: {e}", path.display()))?;
        }
    }
    let cached = done - by_source.get("fresh").copied().unwrap_or(0);
    let hit_rate = if done == 0 {
        0.0
    } else {
        100.0 * cached as f64 / done as f64
    };
    println!(
        "{done} results in {:.2?}: {} fresh, {} memory, {} disk, {} coalesced, {errors} errors ({hit_rate:.0}% cached)",
        wall,
        by_source.get("fresh").copied().unwrap_or(0),
        by_source.get("memory").copied().unwrap_or(0),
        by_source.get("disk").copied().unwrap_or(0),
        by_source.get("coalesced").copied().unwrap_or(0),
    );
    if let Some(expected) = options.expect_hit_rate {
        if hit_rate < expected {
            eprintln!("amclient: hit rate {hit_rate:.1}% below the expected {expected:.1}%");
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(if errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Connects to the server's *metrics* endpoint and prints the Prometheus
/// text exposition — what a scraper would see, without needing curl.
fn print_metrics(endpoint: &Endpoint) -> Result<(), String> {
    let mut stream =
        NetStream::connect(endpoint).map_err(|e| format!("connect {endpoint}: {e}"))?;
    let (status, body) = httpx::get(&mut stream, "/metrics").map_err(|e| e.to_string())?;
    if !status.contains("200") {
        return Err(format!("GET /metrics: {status}"));
    }
    print!("{body}");
    Ok(())
}

fn print_trace_tail(client: &mut Client, limit: u64) -> Result<(), ClientError> {
    let (entries, dropped) = client.trace_tail(limit)?;
    if entries.is_empty() {
        println!("no traced requests in the ring");
    }
    for e in &entries {
        println!(
            "{} {} [{}] conn={} t+{}",
            e.trace_id,
            e.name,
            e.source,
            e.conn,
            fmt_micros(e.ts_micros)
        );
        for (depth, name, micros) in e.spans() {
            println!(
                "  {:indent$}{name} {}",
                "",
                fmt_micros(micros),
                indent = depth * 2
            );
        }
    }
    if dropped > 0 {
        println!("({dropped} older traces evicted from the ring)");
    }
    Ok(())
}

fn print_stats(client: &mut Client) -> Result<(), ClientError> {
    let s = client.stats()?;
    println!(
        "uptime: {:.1}s, workers: {}",
        s.uptime_micros as f64 / 1e6,
        s.workers
    );
    println!(
        "connections: {} open, {} total",
        s.connections_open, s.connections_total
    );
    println!(
        "requests: {} optimize, {} stats, {} ping ({} busy, {} errors)",
        s.requests_optimize, s.requests_stats, s.requests_ping, s.busy, s.errors
    );
    println!(
        "sources: {} fresh, {} memory, {} disk, {} coalesced",
        s.fresh, s.memory_hits, s.disk_hits, s.coalesced
    );
    println!("queue: {} now, {} peak", s.queued_now, s.queue_peak);
    let m = &s.memory_cache;
    println!(
        "memory cache: {} hits, {} misses, {} evictions, {} entries",
        m.hits, m.misses, m.evictions, m.entries
    );
    match &s.disk_cache {
        None => println!("disk cache: disabled"),
        Some(d) => {
            println!(
                "disk cache: {} hits, {} misses, {} stores, {} evictions, {} entries, {}/{} KiB",
                d.hits,
                d.misses,
                d.stores,
                d.evictions,
                d.entries,
                d.bytes >> 10,
                d.budget_bytes >> 10
            );
            if d.load_errors > 0 {
                println!("disk cache load errors: {}", d.load_errors);
            }
        }
    }
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "latency", "count", "p50", "p95", "p99", "max"
    );
    let mut rows = vec![("request", &s.latency_request), ("queue", &s.latency_queue)];
    for (name, q) in am_serve::proto::PHASE_NAMES.iter().zip(&s.phases) {
        rows.push((name, q));
    }
    for (name, q) in rows {
        println!(
            "{name:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            q.count,
            fmt_micros(q.p50),
            fmt_micros(q.p95),
            fmt_micros(q.p99),
            fmt_micros(q.max)
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoint = Endpoint::Tcp("127.0.0.1:7345".to_owned());
    let mut command: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut corpus = false;
    let mut json = false;
    let mut limit = 16u64;
    let mut options = OptimizeOptions {
        jobs: Vec::new(),
        repeat: 1,
        window: 32,
        emit: None,
        expect_hit_rate: None,
        quiet: false,
    };

    let fail = |message: String| -> ExitCode {
        eprintln!("amclient: {message}");
        ExitCode::from(2)
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
        let parsed = match arg.as_str() {
            "-h" | "--help" => usage(),
            "--connect" => {
                value("--connect").and_then(|v| Endpoint::parse(&v).map(|ep| endpoint = ep))
            }
            "--corpus" => {
                corpus = true;
                Ok(())
            }
            "--repeat" => value("--repeat").and_then(|v| {
                v.parse()
                    .map(|n| options.repeat = n)
                    .map_err(|_| "--repeat needs an integer".to_owned())
            }),
            "--window" => value("--window").and_then(|v| {
                v.parse()
                    .map(|n: usize| options.window = n.max(1))
                    .map_err(|_| "--window needs an integer".to_owned())
            }),
            "--emit" => value("--emit").map(|v| options.emit = Some(v)),
            "--expect-hit-rate" => value("--expect-hit-rate").and_then(|v| {
                v.parse()
                    .map(|p| options.expect_hit_rate = Some(p))
                    .map_err(|_| "--expect-hit-rate needs a number".to_owned())
            }),
            "--quiet" => {
                options.quiet = true;
                Ok(())
            }
            "--json" => {
                json = true;
                Ok(())
            }
            "--limit" => value("--limit").and_then(|v| {
                v.parse()
                    .map(|n| limit = n)
                    .map_err(|_| "--limit needs an integer".to_owned())
            }),
            other if other.starts_with('-') => Err(format!("unknown option '{other}'")),
            other => {
                if command.is_none() {
                    command = Some(other.to_owned());
                } else {
                    files.push(other.to_owned());
                }
                Ok(())
            }
        };
        if let Err(message) = parsed {
            return fail(message);
        }
    }
    let Some(command) = command else { usage() };

    // `metrics` speaks HTTP to the scrape listener, not the job protocol.
    if command == "metrics" {
        return match print_metrics(&endpoint) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => fail(message),
        };
    }

    let mut client = match Client::connect(&endpoint) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("amclient: connect {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command.as_str() {
        "ping" => client
            .ping()
            .map(|()| {
                println!("ok");
                ExitCode::SUCCESS
            })
            .map_err(|e| e.to_string()),
        "stats" if json => client
            .stats()
            .map(|s| {
                println!("{}", proto::encode_stats_doc(&s));
                ExitCode::SUCCESS
            })
            .map_err(|e| e.to_string()),
        "stats" => print_stats(&mut client)
            .map(|()| ExitCode::SUCCESS)
            .map_err(|e| e.to_string()),
        "trace-tail" => print_trace_tail(&mut client, limit)
            .map(|()| ExitCode::SUCCESS)
            .map_err(|e| e.to_string()),
        "shutdown" => client
            .shutdown()
            .map(|()| {
                println!("server drained and stopped");
                ExitCode::SUCCESS
            })
            .map_err(|e| e.to_string()),
        "optimize" => match load_jobs(&files, corpus) {
            Err(message) => Err(message),
            Ok(jobs) => {
                options.jobs = jobs;
                run_optimize(&mut client, &options)
            }
        },
        other => return fail(format!("unknown command '{other}'")),
    };
    match outcome {
        Ok(code) => code,
        Err(message) => {
            eprintln!("amclient: {message}");
            ExitCode::FAILURE
        }
    }
}
