//! The service benchmark: an in-process `amserve` under concurrent
//! clients.
//!
//! Boots a server on an ephemeral localhost port, drives it with N client
//! threads — each pipelining the built-in 80-program corpus over its own
//! connection, `--passes` times — and writes an `am-bench-service/v1`
//! JSON document: throughput, dedup ratio (requests answered per fresh
//! optimization), result-source mix, and client-observed latency
//! percentiles.
//!
//! ```sh
//! cargo run --release -p am-serve --bin bench_service
//! cargo run --release -p am-serve --bin bench_service -- \
//!     --clients 8 --passes 2 --out target/BENCH_service.json
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use am_lang::SourceKind;
use am_serve::client::Client;
use am_serve::diskcache::DiskCacheConfig;
use am_serve::net::Endpoint;
use am_serve::proto::Reply;
use am_serve::server::{Server, ServerConfig};

/// Schema tag of the emitted document.
pub const SERVICE_SCHEMA: &str = "am-bench-service/v1";

const USAGE: &str = "usage: bench_service [options]

Boots an in-process optimization server and measures it under concurrent
clients submitting the built-in 80-program corpus. Writes machine-readable
benchmark records (am-bench-service/v1 JSON).

options:
  --out PATH       output file (default BENCH_service.json)
  --clients N      concurrent client connections (default 4)
  --passes N       corpus passes per client (default 2)
  --window N       pipelined in-flight requests per client (default 16)
  --workers N      server worker threads (default: all cores)
  --cache-dir DIR  run with the persistent disk cache under DIR
  --metrics        also serve (and scrape once) a Prometheus endpoint, to
                   measure the exposition's overhead in the same run
  --history PATH   also append the run to an append-only history
                   (default BENCH_history.jsonl; see amstat regress)
  --no-history     skip the history append
  --help           this text";

struct Options {
    out: String,
    clients: usize,
    passes: usize,
    window: usize,
    workers: usize,
    cache_dir: Option<String>,
    metrics: bool,
    history: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_service.json".to_owned(),
        clients: 4,
        passes: 2,
        window: 16,
        workers: 0,
        cache_dir: None,
        metrics: false,
        history: Some("BENCH_history.jsonl".to_owned()),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => opts.out = value(&mut args, "--out")?,
            "--clients" => {
                opts.clients = value(&mut args, "--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
                if opts.clients == 0 {
                    return Err("--clients must be at least 1".to_owned());
                }
            }
            "--passes" => {
                opts.passes = value(&mut args, "--passes")?
                    .parse()
                    .map_err(|e| format!("--passes: {e}"))?;
                if opts.passes == 0 {
                    return Err("--passes must be at least 1".to_owned());
                }
            }
            "--window" => {
                opts.window = value(&mut args, "--window")?
                    .parse::<usize>()
                    .map_err(|e| format!("--window: {e}"))?
                    .max(1);
            }
            "--workers" => {
                opts.workers = value(&mut args, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache-dir" => opts.cache_dir = Some(value(&mut args, "--cache-dir")?),
            "--metrics" => opts.metrics = true,
            "--history" => opts.history = Some(value(&mut args, "--history")?),
            "--no-history" => opts.history = None,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument '{other}'; --help for usage")),
        }
    }
    Ok(opts)
}

/// What one client thread observed.
#[derive(Default)]
struct ClientOutcome {
    latencies_micros: Vec<u64>,
    by_source: HashMap<String, u64>,
    busy_retries: u64,
    errors: u64,
}

/// Submits the corpus `passes` times over one pipelined connection.
fn drive_client(
    endpoint: &Endpoint,
    corpus: &[(String, String)],
    passes: usize,
    window: usize,
) -> Result<ClientOutcome, String> {
    let mut client = Client::connect(endpoint).map_err(|e| format!("connect: {e}"))?;
    let mut outcome = ClientOutcome::default();
    let total = corpus.len() * passes;
    let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
    let mut retry: Vec<usize> = Vec::new();
    let mut next = 0usize;
    while next < total || !in_flight.is_empty() || !retry.is_empty() {
        while in_flight.len() < window {
            let Some(slot) = retry.pop().or_else(|| {
                (next < total).then(|| {
                    next += 1;
                    next - 1
                })
            }) else {
                break;
            };
            let (name, text) = &corpus[slot % corpus.len()];
            let id = client
                .submit(name.clone(), SourceKind::Ir, text.clone())
                .map_err(|e| format!("submit: {e}"))?;
            in_flight.insert(id, (slot, Instant::now()));
        }
        if in_flight.is_empty() {
            break;
        }
        let (id, reply) = client.recv().map_err(|e| format!("recv: {e}"))?;
        let Some((slot, submitted)) = in_flight.remove(&id) else {
            return Err(format!("response for unknown request id {id}"));
        };
        match reply {
            Reply::Result(result) => {
                outcome
                    .latencies_micros
                    .push(submitted.elapsed().as_micros() as u64);
                *outcome.by_source.entry(result.source).or_insert(0) += 1;
            }
            Reply::Busy { .. } => {
                outcome.busy_retries += 1;
                retry.push(slot);
            }
            Reply::Error { message } => {
                outcome.errors += 1;
                eprintln!("bench_service: {message}");
            }
            other => return Err(format!("unexpected reply: {other:?}")),
        }
    }
    Ok(outcome)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct BenchDoc {
    clients: usize,
    passes: usize,
    window: usize,
    workers: u64,
    programs: usize,
    persistent_cache: bool,
    requests: u64,
    errors: u64,
    busy_retries: u64,
    sources: [(String, u64); 4],
    wall_micros: u64,
    latencies_sorted: Vec<u64>,
}

impl BenchDoc {
    fn fresh(&self) -> u64 {
        self.sources
            .iter()
            .find(|(name, _)| name == "fresh")
            .map_or(0, |(_, n)| *n)
    }

    /// Requests answered per fresh optimization — the cache/coalescing
    /// multiplier. 1.0 means no reuse at all.
    fn dedup_ratio(&self) -> f64 {
        let answered: u64 = self.sources.iter().map(|(_, n)| n).sum();
        if self.fresh() == 0 {
            answered as f64
        } else {
            answered as f64 / self.fresh() as f64
        }
    }

    fn throughput_rps(&self) -> f64 {
        if self.wall_micros == 0 {
            0.0
        } else {
            self.requests as f64 * 1e6 / self.wall_micros as f64
        }
    }

    fn render(&self) -> String {
        let l = &self.latencies_sorted;
        let mean = if l.is_empty() {
            0
        } else {
            l.iter().sum::<u64>() / l.len() as u64
        };
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"schema\": \"{SERVICE_SCHEMA}\",\n");
        out.push_str("  \"generator\": \"bench_service\",\n");
        let _ =
            writeln!(
            out,
            "  \"config\": {{\"clients\": {}, \"passes\": {}, \"window\": {}, \"workers\": {}, \
             \"programs\": {}, \"persistent_cache\": {}}},",
            self.clients, self.passes, self.window, self.workers, self.programs,
            self.persistent_cache
        );
        let _ = writeln!(
            out,
            "  \"requests\": {}, \"errors\": {}, \"busy_retries\": {},",
            self.requests, self.errors, self.busy_retries
        );
        out.push_str("  \"sources\": {");
        for (i, (name, count)) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {count}");
        }
        out.push_str("},\n");
        let _ = writeln!(
            out,
            "  \"dedup_ratio\": {:.3}, \"throughput_rps\": {:.1}, \"wall_micros\": {},",
            self.dedup_ratio(),
            self.throughput_rps(),
            self.wall_micros
        );
        let _ = write!(
            out,
            "  \"latency_micros\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \
             \"p99\": {}, \"max\": {}}}\n}}\n",
            l.len(),
            mean,
            percentile(l, 0.50),
            percentile(l, 0.95),
            percentile(l, 0.99),
            l.last().copied().unwrap_or(0)
        );
        out
    }
}

fn run(opts: &Options) -> Result<BenchDoc, String> {
    let corpus: Vec<(String, String)> = am_ir::random::corpus80()
        .into_iter()
        .map(|(name, graph)| (name, am_ir::text::to_text(&graph)))
        .collect();
    let programs = corpus.len();
    let corpus = Arc::new(corpus);

    let config = ServerConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:0".to_owned()),
        workers: opts.workers,
        disk: opts
            .cache_dir
            .as_ref()
            .map(|dir| DiskCacheConfig::new(dir.clone())),
        metrics: opts
            .metrics
            .then(|| Endpoint::Tcp("127.0.0.1:0".to_owned())),
        ..ServerConfig::default()
    };
    let persistent_cache = config.disk.is_some();
    let server = Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let endpoint = server.endpoint().clone();
    let metrics_endpoint = server.metrics_endpoint().cloned();
    let server_thread = std::thread::spawn(move || server.run());

    let started = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..opts.clients {
        let endpoint = endpoint.clone();
        let corpus = Arc::clone(&corpus);
        let (passes, window) = (opts.passes, opts.window);
        threads.push(std::thread::spawn(move || {
            drive_client(&endpoint, &corpus, passes, window)
        }));
    }
    let mut outcomes = Vec::new();
    for thread in threads {
        outcomes.push(
            thread
                .join()
                .map_err(|_| "client thread panicked".to_owned())??,
        );
    }
    let wall_micros = started.elapsed().as_micros() as u64;

    // One scrape, to prove the exposition works while the benchmark's
    // counters are still live — and so the --metrics run exercises the
    // listener it is measuring the overhead of.
    if let Some(m) = &metrics_endpoint {
        let mut stream =
            am_serve::net::NetStream::connect(m).map_err(|e| format!("metrics connect: {e}"))?;
        let (status, body) =
            am_obs::httpx::get(&mut stream, "/metrics").map_err(|e| format!("scrape: {e}"))?;
        if !status.contains("200") || !body.contains("am_requests_total") {
            return Err(format!("metrics scrape failed: {status}"));
        }
    }

    let mut control = Client::connect(&endpoint).map_err(|e| format!("connect: {e}"))?;
    let stats = control.stats().map_err(|e| format!("stats: {e}"))?;
    control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_owned())?
        .map_err(|e| format!("serve: {e}"))?;

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_micros.iter().copied())
        .collect();
    latencies.sort_unstable();
    let source_total = |name: &str| {
        outcomes
            .iter()
            .map(|o| o.by_source.get(name).copied().unwrap_or(0))
            .sum::<u64>()
    };
    Ok(BenchDoc {
        clients: opts.clients,
        passes: opts.passes,
        window: opts.window,
        workers: stats.workers,
        programs,
        persistent_cache,
        requests: latencies.len() as u64,
        errors: outcomes.iter().map(|o| o.errors).sum(),
        busy_retries: outcomes.iter().map(|o| o.busy_retries).sum(),
        sources: [
            ("fresh".to_owned(), source_total("fresh")),
            ("memory".to_owned(), source_total("memory")),
            ("disk".to_owned(), source_total("disk")),
            ("coalesced".to_owned(), source_total("coalesced")),
        ],
        wall_micros,
        latencies_sorted: latencies,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let doc = match run(&opts) {
        Ok(doc) => doc,
        Err(msg) => {
            eprintln!("bench_service: {msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} requests over {} clients in {:.2}s: {:.1} req/s, dedup x{:.2}",
        doc.requests,
        doc.clients,
        doc.wall_micros as f64 / 1e6,
        doc.throughput_rps(),
        doc.dedup_ratio()
    );
    for (name, count) in &doc.sources {
        println!("  {name:<10} {count}");
    }
    println!(
        "  latency p50={}us p95={}us p99={}us max={}us",
        percentile(&doc.latencies_sorted, 0.50),
        percentile(&doc.latencies_sorted, 0.95),
        percentile(&doc.latencies_sorted, 0.99),
        doc.latencies_sorted.last().copied().unwrap_or(0)
    );
    if let Err(e) = std::fs::write(&opts.out, doc.render()) {
        eprintln!("{}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);
    if let Some(history) = &opts.history {
        match am_obs::regress::append_history(std::path::Path::new(history), &doc.render()) {
            Ok(()) => println!("appended this run to {history}"),
            Err(e) => {
                eprintln!("bench_service: history: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if doc.errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_trace::json::{self, Json};

    fn doc() -> BenchDoc {
        BenchDoc {
            clients: 2,
            passes: 2,
            window: 16,
            workers: 8,
            programs: 80,
            persistent_cache: false,
            requests: 320,
            errors: 0,
            busy_retries: 3,
            sources: [
                ("fresh".to_owned(), 80),
                ("memory".to_owned(), 200),
                ("disk".to_owned(), 0),
                ("coalesced".to_owned(), 40),
            ],
            wall_micros: 2_000_000,
            latencies_sorted: (1..=320).collect(),
        }
    }

    #[test]
    fn rendered_document_parses_with_the_expected_fields() {
        let v = json::parse(&doc().render()).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(SERVICE_SCHEMA));
        assert_eq!(v.get("requests").and_then(Json::as_u64), Some(320));
        let sources = v.get("sources").unwrap();
        assert_eq!(sources.get("memory").and_then(Json::as_u64), Some(200));
        // 320 answered / 80 fresh = 4x dedup.
        let dedup = match v.get("dedup_ratio") {
            Some(Json::Num(n)) => *n,
            other => panic!("dedup_ratio: {other:?}"),
        };
        assert!((dedup - 4.0).abs() < 1e-9);
        let latency = v.get("latency_micros").unwrap();
        assert_eq!(latency.get("p50").and_then(Json::as_u64), Some(160));
        assert_eq!(latency.get("max").and_then(Json::as_u64), Some(320));
        assert_eq!(
            v.get("config")
                .unwrap()
                .get("programs")
                .and_then(Json::as_u64),
            Some(80)
        );
    }
}
