//! `amserve`: the long-running optimization daemon.
//!
//! Binds a localhost TCP address or unix-domain socket, serves `amclient`
//! requests over the length-prefixed JSON protocol, and keeps the result
//! caches — in-memory always, on-disk when `--cache-dir` is given — hot
//! across any number of client batches. Stops on a client's `shutdown`
//! request after draining in-flight work.

use std::process::ExitCode;

use am_serve::diskcache::DiskCacheConfig;
use am_serve::net::Endpoint;
use am_serve::server::{Server, ServerConfig};
use am_trace::Tracer;

fn usage() -> ! {
    eprintln!("usage: amserve [options]");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --listen EP          endpoint: tcp://HOST:PORT, unix://PATH, HOST:PORT or a");
    eprintln!("                       socket path (default tcp://127.0.0.1:7345; port 0 binds");
    eprintln!("                       an ephemeral port, see --ready-file)");
    eprintln!("  --cache-dir DIR      enable the persistent result cache under DIR");
    eprintln!("  --cache-budget-mb N  on-disk cache byte budget, MiB (default 256)");
    eprintln!("  --cache-cap N        in-memory result-cache capacity, entries (default 1024)");
    eprintln!("  --workers N          worker threads (default: all cores)");
    eprintln!("  --queue-depth N      per-connection queue bound before busy (default 64)");
    eprintln!("  --max-rounds N       motion-round budget per job");
    eprintln!("  --lint               lint optimized programs, report counts in results");
    eprintln!("  --trace FILE         write a JSONL trace (amstat-compatible) on exit");
    eprintln!("  --metrics EP         serve Prometheus text on a second endpoint");
    eprintln!("                       (GET /metrics, plus /healthz)");
    eprintln!("  --trace-ring N       completed-request traces kept for trace-tail");
    eprintln!("                       (default 256)");
    eprintln!("  --ready-file FILE    write the bound endpoint to FILE once listening");
    eprintln!("                       (second line 'metrics EP' when --metrics is on)");
    eprintln!("  --quiet              suppress startup/shutdown chatter");
    std::process::exit(2);
}

struct Options {
    config: ServerConfig,
    trace_path: Option<String>,
    ready_file: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        config: ServerConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:7345".to_owned()),
            ..ServerConfig::default()
        },
        trace_path: None,
        ready_file: None,
        quiet: false,
    };
    let mut cache_dir: Option<String> = None;
    let mut cache_budget_mb: u64 = 256;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "-h" | "--help" => usage(),
            "--listen" => options.config.endpoint = Endpoint::parse(&value("--listen")?)?,
            "--cache-dir" => cache_dir = Some(value("--cache-dir")?),
            "--cache-budget-mb" => {
                cache_budget_mb = value("--cache-budget-mb")?
                    .parse()
                    .map_err(|_| "--cache-budget-mb needs an integer".to_owned())?
            }
            "--cache-cap" => {
                options.config.cache_capacity = value("--cache-cap")?
                    .parse()
                    .map_err(|_| "--cache-cap needs an integer".to_owned())?
            }
            "--workers" => {
                options.config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_owned())?
            }
            "--queue-depth" => {
                options.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer".to_owned())?
            }
            "--max-rounds" => {
                options.config.max_motion_rounds = Some(
                    value("--max-rounds")?
                        .parse()
                        .map_err(|_| "--max-rounds needs an integer".to_owned())?,
                )
            }
            "--lint" => options.config.lint = true,
            "--trace" => options.trace_path = Some(value("--trace")?),
            "--metrics" => options.config.metrics = Some(Endpoint::parse(&value("--metrics")?)?),
            "--trace-ring" => {
                options.config.trace_ring = value("--trace-ring")?
                    .parse()
                    .map_err(|_| "--trace-ring needs an integer".to_owned())?
            }
            "--ready-file" => options.ready_file = Some(value("--ready-file")?),
            "--quiet" => options.quiet = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if let Some(dir) = cache_dir {
        options.config.disk = Some(DiskCacheConfig {
            root: dir.into(),
            budget_bytes: cache_budget_mb.max(1) << 20,
        });
    }
    Ok(options)
}

fn run(mut options: Options) -> Result<(), String> {
    let collector = options.trace_path.as_ref().map(|_| {
        let (tracer, collector) = Tracer::collector();
        options.config.tracer = tracer;
        collector
    });
    let disk_enabled = options.config.disk.is_some();
    let server = Server::bind(options.config).map_err(|e| format!("bind: {e}"))?;
    let endpoint = server.endpoint().clone();
    let metrics_endpoint = server.metrics_endpoint().cloned();
    if let Some(path) = &options.ready_file {
        // Written after bind, so a reader that sees the file can connect
        // immediately — this is how CI discovers an ephemeral port (for
        // both listeners: the metrics endpoint rides on a second line).
        let mut ready = format!("{endpoint}\n");
        if let Some(m) = &metrics_endpoint {
            ready.push_str(&format!("metrics {m}\n"));
        }
        std::fs::write(path, ready).map_err(|e| format!("{path}: {e}"))?;
    }
    if !options.quiet {
        eprintln!(
            "amserve: listening on {endpoint} ({} cache)",
            if disk_enabled {
                "persistent"
            } else {
                "in-memory"
            }
        );
        if let Some(m) = &metrics_endpoint {
            eprintln!("amserve: metrics on {m} (GET /metrics)");
        }
    }
    server.run().map_err(|e| format!("serve: {e}"))?;
    if let (Some(path), Some(collector)) = (&options.trace_path, &collector) {
        let events = collector.take();
        std::fs::write(path, am_trace::export::jsonl(&events))
            .map_err(|e| format!("{path}: {e}"))?;
        if !options.quiet {
            eprintln!("amserve: wrote {} trace events to {path}", events.len());
        }
    }
    if !options.quiet {
        eprintln!("amserve: drained and stopped");
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("amserve: {message}");
            return ExitCode::from(2);
        }
    };
    match run(options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("amserve: {message}");
            ExitCode::FAILURE
        }
    }
}
