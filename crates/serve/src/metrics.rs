//! Live server metrics.
//!
//! One mutex-guarded aggregate, updated by the connection handlers and
//! workers, snapshotted on demand by `stats` requests. Latencies reuse
//! `am-trace`'s [`DurStats`] (exact percentiles + log₂ histogram), so the
//! `stats` response and `amstat`'s offline trace aggregation report the
//! same quantile semantics.

use std::sync::Mutex;
use std::time::Instant;

use am_obs::promtext::Registry;
use am_pipeline::{CacheStats, ResultSource};
use am_trace::stats::DurStats;

use crate::proto::PHASE_NAMES;
use crate::proto::{DiskCacheSnapshot, MemoryCacheSnapshot, QuantileSummary, StatsSnapshot};

#[derive(Default)]
struct Counters {
    connections_open: u64,
    connections_total: u64,
    requests_optimize: u64,
    requests_stats: u64,
    requests_ping: u64,
    fresh: u64,
    memory_hits: u64,
    disk_hits: u64,
    coalesced: u64,
    busy: u64,
    errors: u64,
    queue_peak: u64,
    latency_request: DurStats,
    latency_queue: DurStats,
    phases: [DurStats; 4],
}

/// The server's metric aggregate.
pub struct Metrics {
    started: Instant,
    inner: Mutex<Counters>,
}

fn summarize(d: &DurStats) -> QuantileSummary {
    QuantileSummary {
        count: d.count,
        total_micros: d.total_micros,
        p50: d.quantile(0.50),
        p95: d.quantile(0.95),
        p99: d.quantile(0.99),
        max: d.max_micros,
    }
}

impl Metrics {
    /// A fresh aggregate; uptime counts from now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            inner: Mutex::new(Counters::default()),
        }
    }

    /// A connection was accepted.
    pub fn connection_opened(&self) {
        let mut c = self.inner.lock().unwrap();
        c.connections_open += 1;
        c.connections_total += 1;
    }

    /// A connection ended.
    pub fn connection_closed(&self) {
        let mut c = self.inner.lock().unwrap();
        c.connections_open = c.connections_open.saturating_sub(1);
    }

    /// A `ping` was answered.
    pub fn ping(&self) {
        self.inner.lock().unwrap().requests_ping += 1;
    }

    /// A `stats` was answered.
    pub fn stats_request(&self) {
        self.inner.lock().unwrap().requests_stats += 1;
    }

    /// An `optimize` was accepted into a queue; `depth` is the total
    /// queued population after the push.
    pub fn optimize_enqueued(&self, depth: u64) {
        let mut c = self.inner.lock().unwrap();
        c.requests_optimize += 1;
        c.queue_peak = c.queue_peak.max(depth);
    }

    /// An `optimize` bounced with `busy`.
    pub fn rejected_busy(&self) {
        let mut c = self.inner.lock().unwrap();
        c.requests_optimize += 1;
        c.busy += 1;
    }

    /// A request was answered with `error`.
    pub fn request_error(&self) {
        self.inner.lock().unwrap().errors += 1;
    }

    /// An `optimize` was answered with a result. `coalesced` marks jobs
    /// answered by riding an identical in-flight job rather than by their
    /// own engine call.
    pub fn optimize_answered(
        &self,
        source: ResultSource,
        coalesced: bool,
        queue_micros: u64,
        request_micros: u64,
    ) {
        let mut c = self.inner.lock().unwrap();
        if coalesced {
            c.coalesced += 1;
        } else {
            match source {
                ResultSource::Fresh => c.fresh += 1,
                ResultSource::Memory => c.memory_hits += 1,
                ResultSource::Secondary => c.disk_hits += 1,
            }
        }
        c.latency_queue.record(queue_micros);
        c.latency_request.record(request_micros);
    }

    /// Folds the phase timings of one fresh optimization, microseconds in
    /// `split`, `init`, `motion`, `flush` order.
    pub fn phase_timings(&self, micros: [u64; 4]) {
        let mut c = self.inner.lock().unwrap();
        for (slot, m) in c.phases.iter_mut().zip(micros) {
            slot.record(m);
        }
    }

    /// Exports the aggregate into a Prometheus [`Registry`]. The latency
    /// histograms reuse the very [`DurStats`] the `stats` response
    /// summarizes, so the scrape endpoint and `amclient stats` report one
    /// distribution, not two recordings. The caller adds what the metrics
    /// don't own (workers, queue depth, cache tiers) as its own families.
    pub fn export(&self, r: &mut Registry) {
        let c = self.inner.lock().unwrap();
        r.gauge(
            "am_uptime_seconds",
            "Seconds since the server started.",
            &[],
            self.started.elapsed().as_secs_f64(),
        );
        r.gauge(
            "am_connections_open",
            "Connections currently open.",
            &[],
            c.connections_open as f64,
        );
        r.counter(
            "am_connections_total",
            "Connections accepted since start.",
            &[],
            c.connections_total,
        );
        for (verb, n) in [
            ("optimize", c.requests_optimize),
            ("stats", c.requests_stats),
            ("ping", c.requests_ping),
        ] {
            r.counter(
                "am_requests_total",
                "Requests received, by verb.",
                &[("verb", verb)],
                n,
            );
        }
        for (source, n) in [
            ("fresh", c.fresh),
            ("memory", c.memory_hits),
            ("disk", c.disk_hits),
            ("coalesced", c.coalesced),
        ] {
            r.counter(
                "am_optimize_results_total",
                "Optimize results answered, by source.",
                &[("source", source)],
                n,
            );
        }
        r.counter(
            "am_busy_total",
            "Optimize requests bounced with busy.",
            &[],
            c.busy,
        );
        r.counter(
            "am_errors_total",
            "Requests answered with error.",
            &[],
            c.errors,
        );
        r.gauge(
            "am_queue_peak",
            "Largest queued population observed.",
            &[],
            c.queue_peak as f64,
        );
        r.histogram(
            "am_request_latency_seconds",
            "End-to-end request latency (enqueue to response written).",
            &[],
            &c.latency_request,
        );
        r.histogram(
            "am_queue_latency_seconds",
            "Queue wait (enqueue to worker pickup).",
            &[],
            &c.latency_queue,
        );
        for (name, d) in PHASE_NAMES.iter().zip(&c.phases) {
            r.histogram(
                "am_phase_latency_seconds",
                "Optimizer phase latency of fresh runs.",
                &[("phase", name)],
                d,
            );
        }
    }

    /// The current aggregate in wire shape. The caller supplies what the
    /// metrics don't own: worker/queue population and the two cache tiers'
    /// counters.
    pub fn snapshot(
        &self,
        workers: u64,
        queued_now: u64,
        memory: CacheStats,
        disk: Option<DiskCacheSnapshot>,
    ) -> StatsSnapshot {
        let c = self.inner.lock().unwrap();
        StatsSnapshot {
            uptime_micros: self.started.elapsed().as_micros() as u64,
            workers,
            connections_open: c.connections_open,
            connections_total: c.connections_total,
            requests_optimize: c.requests_optimize,
            requests_stats: c.requests_stats,
            requests_ping: c.requests_ping,
            fresh: c.fresh,
            memory_hits: c.memory_hits,
            disk_hits: c.disk_hits,
            coalesced: c.coalesced,
            busy: c.busy,
            errors: c.errors,
            queued_now,
            queue_peak: c.queue_peak,
            memory_cache: MemoryCacheSnapshot {
                hits: memory.hits,
                misses: memory.misses,
                evictions: memory.evictions,
                entries: memory.entries as u64,
            },
            disk_cache: disk,
            latency_request: summarize(&c.latency_request),
            latency_queue: summarize(&c.latency_queue),
            phases: [
                summarize(&c.phases[0]),
                summarize(&c.phases[1]),
                summarize(&c.phases[2]),
                summarize(&c.phases[3]),
            ],
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_in_the_snapshot() {
        let m = Metrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.ping();
        m.stats_request();
        m.optimize_enqueued(3);
        m.optimize_enqueued(7);
        m.rejected_busy();
        m.request_error();
        m.optimize_answered(ResultSource::Fresh, false, 5, 100);
        m.optimize_answered(ResultSource::Memory, false, 1, 10);
        m.optimize_answered(ResultSource::Secondary, false, 2, 20);
        m.optimize_answered(ResultSource::Memory, true, 9, 30);
        m.phase_timings([1, 2, 30, 4]);

        let s = m.snapshot(8, 2, CacheStats::default(), None);
        assert_eq!(s.workers, 8);
        assert_eq!(s.queued_now, 2);
        assert_eq!((s.connections_open, s.connections_total), (1, 2));
        assert_eq!(
            (s.requests_ping, s.requests_stats, s.requests_optimize),
            (1, 1, 3)
        );
        assert_eq!(
            (s.fresh, s.memory_hits, s.disk_hits, s.coalesced),
            (1, 1, 1, 1)
        );
        assert_eq!((s.busy, s.errors), (1, 1));
        assert_eq!(s.queue_peak, 7);
        assert_eq!(s.latency_request.count, 4);
        assert_eq!(s.latency_request.max, 100);
        assert_eq!(s.latency_queue.total_micros, 17);
        assert_eq!(s.phases[2].max, 30);
        assert!(s.disk_cache.is_none());
    }
}
