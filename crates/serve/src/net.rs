//! Transport: localhost TCP or unix-domain sockets behind one enum.
//!
//! The protocol layer ([`crate::proto`]) only needs `Read + Write`; this
//! module supplies the two stream flavors, listener-side accept with
//! polling (so the accept loop can observe a shutdown flag), and a tiny
//! endpoint syntax shared by every binary: `tcp://HOST:PORT` (a bare
//! `HOST:PORT` also works) and `unix://PATH` (a bare path also works).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens and a client connects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:7345`. Port 0 binds an ephemeral port;
    /// the bound endpoint reported by [`NetListener::bind`] carries the
    /// real port.
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

impl Endpoint {
    /// Parses an endpoint: `tcp://HOST:PORT`, `unix://PATH`, a bare
    /// `HOST:PORT`, or (on unix) a bare filesystem path.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            return Ok(Endpoint::Tcp(addr.to_owned()));
        }
        #[cfg(unix)]
        if let Some(path) = s.strip_prefix("unix://") {
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        #[cfg(not(unix))]
        if s.starts_with("unix://") {
            return Err("unix sockets are not supported on this platform".to_owned());
        }
        if looks_like_tcp(s) {
            return Ok(Endpoint::Tcp(s.to_owned()));
        }
        #[cfg(unix)]
        {
            Ok(Endpoint::Unix(PathBuf::from(s)))
        }
        #[cfg(not(unix))]
        {
            Err(format!("'{s}' is not a HOST:PORT address"))
        }
    }
}

/// A bare `HOST:PORT` (the port all-digits) as opposed to a filesystem
/// path.
fn looks_like_tcp(s: &str) -> bool {
    match s.rsplit_once(':') {
        Some((host, port)) => {
            !host.is_empty() && !port.is_empty() && port.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// A listening socket of either flavor.
pub enum NetListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl NetListener {
    /// Binds `endpoint`, returning the listener plus the endpoint actually
    /// bound (with the real port when `endpoint` asked for port 0). A
    /// stale unix socket file left by a previous process is removed first.
    pub fn bind(endpoint: &Endpoint) -> io::Result<(NetListener, Endpoint)> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let bound = Endpoint::Tcp(listener.local_addr()?.to_string());
                Ok((NetListener::Tcp(listener), bound))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // The daemon owns its socket path: a leftover file from a
                // crashed predecessor would otherwise make bind fail with
                // AddrInUse forever.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                Ok((NetListener::Unix(listener), endpoint.clone()))
            }
        }
    }

    /// Switches the listener between blocking and polling accepts.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            NetListener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Tcp(l) => l.accept().map(|(s, _)| NetStream::Tcp(s)),
            #[cfg(unix)]
            NetListener::Unix(l) => l.accept().map(|(s, _)| NetStream::Unix(s)),
        }
    }
}

/// A connected stream of either flavor.
pub enum NetStream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    /// Connects to `endpoint`.
    pub fn connect(endpoint: &Endpoint) -> io::Result<NetStream> {
        match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(NetStream::Tcp),
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path).map(NetStream::Unix),
        }
    }

    /// A second handle on the same socket (shared file descriptor), so one
    /// thread can read while others write responses.
    pub fn try_clone(&self) -> io::Result<NetStream> {
        match self {
            NetStream::Tcp(s) => s.try_clone().map(NetStream::Tcp),
            #[cfg(unix)]
            NetStream::Unix(s) => s.try_clone().map(NetStream::Unix),
        }
    }

    /// Sets the read timeout (None blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            NetStream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_syntax_round_trips() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7345").unwrap(),
            Endpoint::Tcp("127.0.0.1:7345".to_owned())
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:0").unwrap(),
            Endpoint::Tcp("127.0.0.1:0".to_owned())
        );
        #[cfg(unix)]
        {
            assert_eq!(
                Endpoint::parse("unix:///tmp/am.sock").unwrap(),
                Endpoint::Unix(PathBuf::from("/tmp/am.sock"))
            );
            assert_eq!(
                Endpoint::parse("/tmp/am.sock").unwrap(),
                Endpoint::Unix(PathBuf::from("/tmp/am.sock"))
            );
            assert_eq!(
                Endpoint::parse("unix:///tmp/am.sock").unwrap().to_string(),
                "unix:///tmp/am.sock"
            );
        }
        assert_eq!(
            Endpoint::parse("tcp://[::1]:80").unwrap().to_string(),
            "tcp://[::1]:80"
        );
    }

    #[test]
    fn ephemeral_tcp_bind_reports_the_real_port() {
        let (listener, bound) =
            NetListener::bind(&Endpoint::parse("127.0.0.1:0").unwrap()).unwrap();
        let Endpoint::Tcp(addr) = &bound else {
            panic!("tcp endpoint expected")
        };
        assert!(!addr.ends_with(":0"), "{addr}");
        drop(listener);
    }
}
