//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 JSON. Requests carry a client-assigned `id` which the server
//! echoes in the response, so responses may be delivered out of order and
//! clients may pipeline many requests over one connection. Program hashes
//! are 64-bit and JSON numbers are doubles, so hashes travel as 16-digit
//! hex strings.
//!
//! Request operations (`"op"`):
//!
//! * `ping` — liveness probe, answered with `ok`;
//! * `optimize` — `name` (a label), `kind` (`"while"` or `"ir"`) and
//!   `text` (the program source), answered with `result`, `busy` or
//!   `error`;
//! * `stats` — answered with a [`StatsSnapshot`];
//! * `shutdown` — graceful drain; the `ok` answer arrives after every
//!   queued job has been answered and the persistent cache index flushed.
//!
//! The reader/writer works over any `Read`/`Write`, so tests can run it
//! over in-memory buffers; the parser is `am-trace`'s zero-dependency JSON
//! reader.

use std::fmt::Write as _;
use std::io::{self, Read, Write};

use am_lang::SourceKind;
use am_obs::TraceEntry;
use am_trace::json::{self, Json};

/// Protocol version, carried as `"am"` in every request.
pub const PROTOCOL_VERSION: u64 = 1;

/// Frame size cap (64 MiB): a length prefix beyond this is treated as a
/// corrupt stream rather than an allocation request.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                bytes.len()
            ),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean close (EOF before the first
/// byte). A read timeout *before* the frame starts surfaces as the
/// underlying `WouldBlock`/`TimedOut` error so a polling caller can check
/// its shutdown flag and retry; once the first byte has arrived the rest
/// of the frame is awaited across timeouts (a half-frame only fails when
/// the peer actually goes away).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    loop {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    read_full(r, &mut header[1..])?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// `read_exact` that rides out timeouts: mid-frame, a `WouldBlock` or
/// `TimedOut` from a socket read timeout means "not yet", not "gone".
fn read_full(r: &mut impl Read, mut buf: &mut [u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// An `optimize` request body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptimizeRequest {
    /// Client-side label echoed in the result (typically a file name).
    pub name: String,
    /// How to interpret `text`.
    pub kind: SourceKind,
    /// Program source.
    pub text: String,
    /// Client-generated trace id, propagated end to end: the server links
    /// the request's measured stages under this id in its trace ring
    /// (`trace-tail`). Optional and ignored by older servers — the field
    /// is simply absent on the wire when `None`.
    pub trace: Option<String>,
}

/// A parsed request operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Optimize one program.
    Optimize(OptimizeRequest),
    /// Live server metrics.
    Stats,
    /// The newest entries of the server's request-trace ring.
    TraceTail {
        /// Maximum entries to return.
        limit: u64,
    },
    /// Graceful drain-and-stop.
    Shutdown,
}

/// A request plus its client-assigned correlation id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Echoed verbatim in the response.
    pub id: u64,
    /// The operation.
    pub request: Request,
}

fn kind_str(kind: SourceKind) -> &'static str {
    match kind {
        SourceKind::While => "while",
        SourceKind::Ir => "ir",
    }
}

fn kind_from_str(s: &str) -> Result<SourceKind, String> {
    match s {
        "while" => Ok(SourceKind::While),
        "ir" => Ok(SourceKind::Ir),
        other => Err(format!(
            "unknown source kind '{other}' (expected 'while' or 'ir')"
        )),
    }
}

/// Renders a request frame payload.
pub fn encode_request(envelope: &Envelope) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"am\":{PROTOCOL_VERSION},\"id\":{}", envelope.id);
    match &envelope.request {
        Request::Ping => out.push_str(",\"op\":\"ping\""),
        Request::Stats => out.push_str(",\"op\":\"stats\""),
        Request::TraceTail { limit } => {
            let _ = write!(out, ",\"op\":\"trace-tail\",\"limit\":{limit}");
        }
        Request::Shutdown => out.push_str(",\"op\":\"shutdown\""),
        Request::Optimize(req) => {
            out.push_str(",\"op\":\"optimize\",\"name\":");
            json::write_str(&mut out, &req.name);
            let _ = write!(out, ",\"kind\":\"{}\",\"text\":", kind_str(req.kind));
            json::write_str(&mut out, &req.text);
            if let Some(trace) = &req.trace {
                out.push_str(",\"trace\":");
                json::write_str(&mut out, trace);
            }
        }
    }
    out.push('}');
    out
}

/// Parses a request frame payload. On failure the error carries the
/// request id when one could still be extracted, so the server can send a
/// correlated `error` response.
pub fn parse_request(payload: &str) -> Result<Envelope, (Option<u64>, String)> {
    let value = json::parse(payload).map_err(|e| (None, format!("bad request JSON: {e}")))?;
    let id = value.get("id").and_then(Json::as_u64);
    let fail = |msg: String| (id, msg);
    let id = id.ok_or_else(|| (None, "request is missing a numeric \"id\"".to_owned()))?;
    match value.get("am").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        Some(v) => return Err(fail(format!("unsupported protocol version {v}"))),
        None => {
            return Err(fail(
                "request is missing \"am\" (protocol version)".to_owned(),
            ))
        }
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("request is missing a string \"op\"".to_owned()))?;
    let request = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "trace-tail" => Request::TraceTail {
            limit: value.get("limit").and_then(Json::as_u64).unwrap_or(16),
        },
        "shutdown" => Request::Shutdown,
        "optimize" => {
            let field = |key: &str| {
                value
                    .get(key)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| fail(format!("optimize request is missing a string \"{key}\"")))
            };
            let kind = kind_from_str(&field("kind")?).map_err(fail)?;
            Request::Optimize(OptimizeRequest {
                name: field("name")?,
                kind,
                text: field("text")?,
                trace: value.get("trace").and_then(Json::as_str).map(str::to_owned),
            })
        }
        other => return Err(fail(format!("unknown op '{other}'"))),
    };
    Ok(Envelope { id, request })
}

/// An `optimize` outcome as it travels over the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultPayload {
    /// The request's label, echoed.
    pub name: String,
    /// Stable input-program hash, 16 hex digits.
    pub hash: String,
    /// Where the result came from: `fresh`, `memory`, `disk` or
    /// `coalesced` (computed once for several concurrent requests).
    pub source: String,
    /// Canonical text of the optimized program.
    pub canonical: String,
    /// Input CFG nodes.
    pub nodes: u64,
    /// Input instructions.
    pub instrs: u64,
    /// Instruction-level program points.
    pub points: u64,
    /// Critical edges split.
    pub edges_split: u64,
    /// Assignment-motion rounds.
    pub rounds: u64,
    /// Whether motion reached its fixed point within budget.
    pub converged: bool,
    /// Assignment occurrences eliminated.
    pub eliminated: u64,
    /// Instances inserted by hoisting.
    pub inserted: u64,
    /// Hoisting candidates removed.
    pub removed: u64,
    /// Total solver iterations (motion + flush).
    pub iterations: u64,
    /// Lint errors on the optimized program (0 when linting was off).
    pub lint_errors: u64,
    /// Lint warnings on the optimized program.
    pub lint_warnings: u64,
    /// Time the job waited in the dispatch queue.
    pub queue_micros: u64,
    /// Time spent producing the answer (compile + optimize or cache load).
    pub service_micros: u64,
}

/// Latency summary for one metric: sample count and microsecond
/// percentiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuantileSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub total_micros: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// In-memory result-cache counters as they travel over the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryCacheSnapshot {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Resident entries.
    pub entries: u64,
}

/// Persistent disk-cache counters as they travel over the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskCacheSnapshot {
    /// Loads that found a valid entry.
    pub hits: u64,
    /// Loads that found nothing.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries dropped to fit the byte budget.
    pub evictions: u64,
    /// Entries that failed to parse and were deleted.
    pub load_errors: u64,
    /// Entries currently on disk.
    pub entries: u64,
    /// Bytes currently on disk.
    pub bytes: u64,
    /// Configured byte budget.
    pub budget_bytes: u64,
}

/// The live server metrics answered to a `stats` request.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Microseconds since the server started.
    pub uptime_micros: u64,
    /// Worker threads.
    pub workers: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections accepted since start.
    pub connections_total: u64,
    /// `optimize` requests received.
    pub requests_optimize: u64,
    /// `stats` requests received.
    pub requests_stats: u64,
    /// `ping` requests received.
    pub requests_ping: u64,
    /// Results computed fresh.
    pub fresh: u64,
    /// Results served from the in-memory cache.
    pub memory_hits: u64,
    /// Results served from the persistent cache.
    pub disk_hits: u64,
    /// Results answered by coalescing onto an identical in-flight job.
    pub coalesced: u64,
    /// Requests rejected with `busy`.
    pub busy: u64,
    /// Requests answered with `error`.
    pub errors: u64,
    /// Jobs sitting in dispatch queues right now.
    pub queued_now: u64,
    /// Largest queue population observed.
    pub queue_peak: u64,
    /// In-memory cache counters.
    pub memory_cache: MemoryCacheSnapshot,
    /// Persistent cache counters; `None` when running memory-only.
    pub disk_cache: Option<DiskCacheSnapshot>,
    /// End-to-end request latency (enqueue → response written).
    pub latency_request: QuantileSummary,
    /// Queue wait (enqueue → worker pickup).
    pub latency_queue: QuantileSummary,
    /// Optimizer phase latencies of fresh runs, keyed `split`, `init`,
    /// `motion`, `flush` in that order.
    pub phases: [QuantileSummary; 4],
}

/// The four phase labels, index-aligned with [`StatsSnapshot::phases`].
pub const PHASE_NAMES: [&str; 4] = ["split", "init", "motion", "flush"];

/// A response as seen by the client.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Acknowledgement (ping, shutdown).
    Ok,
    /// An optimize result.
    Result(Box<ResultPayload>),
    /// Backpressure: the connection's queue is full; retry after draining
    /// some responses.
    Busy {
        /// Jobs already queued for this connection.
        queued: u64,
        /// The per-connection limit.
        limit: u64,
    },
    /// The request failed (parse error, unknown op, optimizer panic…).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Live metrics.
    Stats(Box<StatsSnapshot>),
    /// The newest request traces.
    Trace {
        /// Entries, oldest first.
        entries: Vec<TraceEntry>,
        /// Ring evictions so far (history `trace-tail` can no longer see).
        dropped: u64,
    },
}

fn write_quantiles(out: &mut String, q: &QuantileSummary) {
    let _ = write!(
        out,
        "{{\"count\":{},\"total_micros\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        q.count, q.total_micros, q.p50, q.p95, q.p99, q.max
    );
}

/// Renders an `ok` response payload.
pub fn encode_ok(id: u64) -> String {
    format!("{{\"id\":{id},\"type\":\"ok\"}}")
}

/// Renders a `busy` response payload.
pub fn encode_busy(id: u64, queued: u64, limit: u64) -> String {
    format!("{{\"id\":{id},\"type\":\"busy\",\"queued\":{queued},\"limit\":{limit}}}")
}

/// Renders an `error` response payload.
pub fn encode_error(id: u64, message: &str) -> String {
    let mut out = format!("{{\"id\":{id},\"type\":\"error\",\"message\":");
    json::write_str(&mut out, message);
    out.push('}');
    out
}

/// Renders a `result` response payload.
pub fn encode_result(id: u64, r: &ResultPayload) -> String {
    let mut out = format!("{{\"id\":{id},\"type\":\"result\",\"name\":");
    json::write_str(&mut out, &r.name);
    let _ = write!(out, ",\"hash\":\"{}\",\"source\":\"{}\"", r.hash, r.source);
    out.push_str(",\"canonical\":");
    json::write_str(&mut out, &r.canonical);
    let _ = write!(
        out,
        ",\"nodes\":{},\"instrs\":{},\"points\":{},\"edges_split\":{},\"rounds\":{},\
         \"converged\":{},\"eliminated\":{},\"inserted\":{},\"removed\":{},\"iterations\":{},\
         \"lint_errors\":{},\"lint_warnings\":{},\"queue_micros\":{},\"service_micros\":{}}}",
        r.nodes,
        r.instrs,
        r.points,
        r.edges_split,
        r.rounds,
        r.converged,
        r.eliminated,
        r.inserted,
        r.removed,
        r.iterations,
        r.lint_errors,
        r.lint_warnings,
        r.queue_micros,
        r.service_micros
    );
    out
}

/// Renders a `trace` response payload.
pub fn encode_trace(id: u64, entries: &[TraceEntry], dropped: u64) -> String {
    let mut out = format!("{{\"id\":{id},\"type\":\"trace\",\"dropped\":{dropped},\"entries\":[");
    for (i, entry) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        entry.write_json(&mut out);
    }
    out.push_str("]}");
    out
}

/// Renders a `stats` response payload.
pub fn encode_stats(id: u64, s: &StatsSnapshot) -> String {
    let mut out = format!("{{\"id\":{id},\"type\":\"stats\"");
    write_stats_body(&mut out, s);
    out
}

/// Renders a snapshot as a standalone `am-stats/v1` document — the shape
/// `amclient stats --json` prints and `amstat` reads directly (same body
/// as the wire `stats` response, with a schema tag instead of the
/// response envelope).
pub fn encode_stats_doc(s: &StatsSnapshot) -> String {
    let mut out = String::from("{\"schema\":\"am-stats/v1\"");
    write_stats_body(&mut out, s);
    out
}

fn write_stats_body(out: &mut String, s: &StatsSnapshot) {
    let _ = write!(
        out,
        ",\"uptime_micros\":{},\"workers\":{},\"connections_open\":{},\"connections_total\":{}",
        s.uptime_micros, s.workers, s.connections_open, s.connections_total
    );
    let _ = write!(
        out,
        ",\"requests\":{{\"optimize\":{},\"stats\":{},\"ping\":{}}}",
        s.requests_optimize, s.requests_stats, s.requests_ping
    );
    let _ = write!(
        out,
        ",\"sources\":{{\"fresh\":{},\"memory\":{},\"disk\":{},\"coalesced\":{}}}",
        s.fresh, s.memory_hits, s.disk_hits, s.coalesced
    );
    let _ = write!(
        out,
        ",\"busy\":{},\"errors\":{},\"queued_now\":{},\"queue_peak\":{}",
        s.busy, s.errors, s.queued_now, s.queue_peak
    );
    let m = &s.memory_cache;
    let _ = write!(
        out,
        ",\"memory_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}}",
        m.hits, m.misses, m.evictions, m.entries
    );
    match &s.disk_cache {
        None => out.push_str(",\"disk_cache\":null"),
        Some(d) => {
            let _ = write!(
                out,
                ",\"disk_cache\":{{\"hits\":{},\"misses\":{},\"stores\":{},\"evictions\":{},\
                 \"load_errors\":{},\"entries\":{},\"bytes\":{},\"budget_bytes\":{}}}",
                d.hits,
                d.misses,
                d.stores,
                d.evictions,
                d.load_errors,
                d.entries,
                d.bytes,
                d.budget_bytes
            );
        }
    }
    out.push_str(",\"latency\":{\"request\":");
    write_quantiles(out, &s.latency_request);
    out.push_str(",\"queue\":");
    write_quantiles(out, &s.latency_queue);
    for (name, q) in PHASE_NAMES.iter().zip(&s.phases) {
        let _ = write!(out, ",\"{name}\":");
        write_quantiles(out, q);
    }
    out.push_str("}}");
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer \"{key}\""))
}

fn get_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean \"{key}\"")),
    }
}

fn parse_quantiles(v: &Json, key: &str) -> Result<QuantileSummary, String> {
    let q = v
        .get(key)
        .ok_or_else(|| format!("missing latency \"{key}\""))?;
    Ok(QuantileSummary {
        count: get_u64(q, "count")?,
        total_micros: get_u64(q, "total_micros")?,
        p50: get_u64(q, "p50")?,
        p95: get_u64(q, "p95")?,
        p99: get_u64(q, "p99")?,
        max: get_u64(q, "max")?,
    })
}

/// Parses a response frame payload into its id and [`Reply`].
pub fn parse_response(payload: &str) -> Result<(u64, Reply), String> {
    let value = json::parse(payload).map_err(|e| format!("bad response JSON: {e}"))?;
    let id = get_u64(&value, "id")?;
    let reply = match get_str(&value, "type")?.as_str() {
        "ok" => Reply::Ok,
        "trace" => {
            let items = value
                .get("entries")
                .and_then(Json::as_arr)
                .ok_or("missing \"entries\"")?;
            let entries = items
                .iter()
                .map(|item| TraceEntry::from_json(item).ok_or("malformed trace entry".to_owned()))
                .collect::<Result<Vec<_>, _>>()?;
            Reply::Trace {
                entries,
                dropped: get_u64(&value, "dropped")?,
            }
        }
        "busy" => Reply::Busy {
            queued: get_u64(&value, "queued")?,
            limit: get_u64(&value, "limit")?,
        },
        "error" => Reply::Error {
            message: get_str(&value, "message")?,
        },
        "result" => Reply::Result(Box::new(ResultPayload {
            name: get_str(&value, "name")?,
            hash: get_str(&value, "hash")?,
            source: get_str(&value, "source")?,
            canonical: get_str(&value, "canonical")?,
            nodes: get_u64(&value, "nodes")?,
            instrs: get_u64(&value, "instrs")?,
            points: get_u64(&value, "points")?,
            edges_split: get_u64(&value, "edges_split")?,
            rounds: get_u64(&value, "rounds")?,
            converged: get_bool(&value, "converged")?,
            eliminated: get_u64(&value, "eliminated")?,
            inserted: get_u64(&value, "inserted")?,
            removed: get_u64(&value, "removed")?,
            iterations: get_u64(&value, "iterations")?,
            lint_errors: get_u64(&value, "lint_errors")?,
            lint_warnings: get_u64(&value, "lint_warnings")?,
            queue_micros: get_u64(&value, "queue_micros")?,
            service_micros: get_u64(&value, "service_micros")?,
        })),
        "stats" => {
            let requests = value.get("requests").ok_or("missing \"requests\"")?;
            let sources = value.get("sources").ok_or("missing \"sources\"")?;
            let mem = value
                .get("memory_cache")
                .ok_or("missing \"memory_cache\"")?;
            let disk = match value.get("disk_cache") {
                None | Some(Json::Null) => None,
                Some(d) => Some(DiskCacheSnapshot {
                    hits: get_u64(d, "hits")?,
                    misses: get_u64(d, "misses")?,
                    stores: get_u64(d, "stores")?,
                    evictions: get_u64(d, "evictions")?,
                    load_errors: get_u64(d, "load_errors")?,
                    entries: get_u64(d, "entries")?,
                    bytes: get_u64(d, "bytes")?,
                    budget_bytes: get_u64(d, "budget_bytes")?,
                }),
            };
            let latency = value.get("latency").ok_or("missing \"latency\"")?;
            let mut phases = [QuantileSummary::default(); 4];
            for (slot, name) in phases.iter_mut().zip(PHASE_NAMES) {
                *slot = parse_quantiles(latency, name)?;
            }
            Reply::Stats(Box::new(StatsSnapshot {
                uptime_micros: get_u64(&value, "uptime_micros")?,
                workers: get_u64(&value, "workers")?,
                connections_open: get_u64(&value, "connections_open")?,
                connections_total: get_u64(&value, "connections_total")?,
                requests_optimize: get_u64(requests, "optimize")?,
                requests_stats: get_u64(requests, "stats")?,
                requests_ping: get_u64(requests, "ping")?,
                fresh: get_u64(sources, "fresh")?,
                memory_hits: get_u64(sources, "memory")?,
                disk_hits: get_u64(sources, "disk")?,
                coalesced: get_u64(sources, "coalesced")?,
                busy: get_u64(&value, "busy")?,
                errors: get_u64(&value, "errors")?,
                queued_now: get_u64(&value, "queued_now")?,
                queue_peak: get_u64(&value, "queue_peak")?,
                memory_cache: MemoryCacheSnapshot {
                    hits: get_u64(mem, "hits")?,
                    misses: get_u64(mem, "misses")?,
                    evictions: get_u64(mem, "evictions")?,
                    entries: get_u64(mem, "entries")?,
                },
                disk_cache: disk,
                latency_request: parse_quantiles(latency, "request")?,
                latency_queue: parse_quantiles(latency, "queue")?,
                phases,
            }))
        }
        other => return Err(format!("unknown response type '{other}'")),
    };
    Ok((id, reply))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut &huge[..]).is_err());

        let mut cut = Vec::new();
        write_frame(&mut cut, "hello").unwrap();
        cut.truncate(cut.len() - 2);
        let err = read_frame(&mut &cut[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn requests_round_trip() {
        let cases = [
            Envelope {
                id: 1,
                request: Request::Ping,
            },
            Envelope {
                id: 2,
                request: Request::Stats,
            },
            Envelope {
                id: 3,
                request: Request::Shutdown,
            },
            Envelope {
                id: 900_719_925_474_099, // near the f64-exact ceiling
                request: Request::Optimize(OptimizeRequest {
                    name: "loop \"quoted\".wl".to_owned(),
                    kind: SourceKind::While,
                    text: "while x < 3 do\n  x := x + 1\nod".to_owned(),
                    trace: Some("00c0ffee00c0ffee".to_owned()),
                }),
            },
            Envelope {
                id: 5,
                request: Request::Optimize(OptimizeRequest {
                    name: "raw.ir".to_owned(),
                    kind: SourceKind::Ir,
                    text: "start s\nend s\nnode s { out(x) }".to_owned(),
                    trace: None,
                }),
            },
            Envelope {
                id: 6,
                request: Request::TraceTail { limit: 25 },
            },
        ];
        for envelope in cases {
            let wire = encode_request(&envelope);
            assert_eq!(parse_request(&wire).unwrap(), envelope, "{wire}");
        }
    }

    #[test]
    fn request_parse_errors_keep_the_id_when_possible() {
        let (id, msg) = parse_request("{\"am\":1,\"id\":9,\"op\":\"frobnicate\"}").unwrap_err();
        assert_eq!(id, Some(9));
        assert!(msg.contains("frobnicate"), "{msg}");

        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, None);

        let (id, msg) = parse_request("{\"am\":2,\"id\":4,\"op\":\"ping\"}").unwrap_err();
        assert_eq!(id, Some(4));
        assert!(msg.contains("version 2"), "{msg}");
    }

    #[test]
    fn simple_responses_round_trip() {
        assert_eq!(parse_response(&encode_ok(7)).unwrap(), (7, Reply::Ok));
        assert_eq!(
            parse_response(&encode_busy(8, 64, 64)).unwrap(),
            (
                8,
                Reply::Busy {
                    queued: 64,
                    limit: 64
                }
            )
        );
        assert_eq!(
            parse_response(&encode_error(9, "no \"such\" op")).unwrap(),
            (
                9,
                Reply::Error {
                    message: "no \"such\" op".to_owned()
                }
            )
        );
    }

    #[test]
    fn trace_requests_without_limit_use_the_default() {
        let envelope = parse_request("{\"am\":1,\"id\":3,\"op\":\"trace-tail\"}").unwrap();
        assert_eq!(envelope.request, Request::TraceTail { limit: 16 });
    }

    #[test]
    fn trace_responses_round_trip() {
        let entries = vec![
            TraceEntry {
                trace_id: "a1".into(),
                name: "p1.wl".into(),
                source: "fresh".into(),
                queue_micros: 3,
                service_micros: 90,
                phases: Some([1, 2, 60, 9]),
                conn: 4,
                ts_micros: 1000,
            },
            TraceEntry {
                trace_id: "a2".into(),
                name: "p2.wl".into(),
                source: "memory".into(),
                queue_micros: 1,
                service_micros: 5,
                phases: None,
                conn: 4,
                ts_micros: 2000,
            },
        ];
        let (id, reply) = parse_response(&encode_trace(31, &entries, 7)).unwrap();
        assert_eq!(id, 31);
        assert_eq!(
            reply,
            Reply::Trace {
                entries,
                dropped: 7
            }
        );

        let (_, empty) = parse_response(&encode_trace(32, &[], 0)).unwrap();
        assert_eq!(
            empty,
            Reply::Trace {
                entries: Vec::new(),
                dropped: 0
            }
        );
    }

    #[test]
    fn stats_doc_carries_the_schema_tag_and_the_full_body() {
        let doc = encode_stats_doc(&StatsSnapshot {
            workers: 3,
            ..Default::default()
        });
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("am-stats/v1"));
        assert_eq!(v.get("workers").and_then(Json::as_u64), Some(3));
        assert!(v.get("latency").is_some());
        assert!(v.get("id").is_none(), "a doc is not a response envelope");
    }

    #[test]
    fn result_responses_round_trip() {
        let payload = ResultPayload {
            name: "p01.wl".to_owned(),
            hash: format!("{:016x}", 0xdead_beef_u64),
            source: "coalesced".to_owned(),
            canonical: "start 1\nend 1\nnode 1 {\n  out(x)\n}\n".to_owned(),
            nodes: 12,
            instrs: 40,
            points: 64,
            edges_split: 3,
            rounds: 2,
            converged: true,
            eliminated: 5,
            inserted: 4,
            removed: 6,
            iterations: 321,
            lint_errors: 0,
            lint_warnings: 1,
            queue_micros: 17,
            service_micros: 905,
        };
        let (id, reply) = parse_response(&encode_result(11, &payload)).unwrap();
        assert_eq!(id, 11);
        assert_eq!(reply, Reply::Result(Box::new(payload)));
    }

    #[test]
    fn stats_responses_round_trip() {
        let mut snapshot = StatsSnapshot {
            uptime_micros: 5_000_000,
            workers: 8,
            connections_open: 2,
            connections_total: 19,
            requests_optimize: 400,
            requests_stats: 3,
            requests_ping: 2,
            fresh: 100,
            memory_hits: 250,
            disk_hits: 30,
            coalesced: 20,
            busy: 7,
            errors: 1,
            queued_now: 4,
            queue_peak: 63,
            memory_cache: MemoryCacheSnapshot {
                hits: 280,
                misses: 120,
                evictions: 9,
                entries: 111,
            },
            disk_cache: Some(DiskCacheSnapshot {
                hits: 30,
                misses: 90,
                stores: 100,
                evictions: 2,
                load_errors: 1,
                entries: 98,
                bytes: 123_456,
                budget_bytes: 268_435_456,
            }),
            latency_request: QuantileSummary {
                count: 400,
                total_micros: 9000,
                p50: 15,
                p95: 60,
                p99: 200,
                max: 900,
            },
            latency_queue: QuantileSummary {
                count: 400,
                total_micros: 800,
                p50: 1,
                p95: 5,
                p99: 11,
                max: 40,
            },
            ..Default::default()
        };
        snapshot.phases[2] = QuantileSummary {
            count: 100,
            total_micros: 5000,
            p50: 40,
            p95: 90,
            p99: 130,
            max: 200,
        };
        let (id, reply) = parse_response(&encode_stats(21, &snapshot)).unwrap();
        assert_eq!(id, 21);
        assert_eq!(reply, Reply::Stats(Box::new(snapshot.clone())));

        snapshot.disk_cache = None;
        let (_, reply) = parse_response(&encode_stats(22, &snapshot)).unwrap();
        assert_eq!(reply, Reply::Stats(Box::new(snapshot)));
    }
}
