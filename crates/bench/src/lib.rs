//! Benchmark harness: executable reproductions of every figure in *The
//! Power of Assignment Motion* and the Sec. 4.5 complexity study.
//!
//! * [`figures`] — one reproduction function per paper figure, returning
//!   before/after programs and dynamic cost measurements (used by the
//!   `figures` binary, the integration tests and the wall-clock benches);
//! * [`workloads`] — the synthetic program families and measurement
//!   machinery of the complexity study (`complexity` binary);
//! * [`programs`] — the figure input programs in textual IR.

#![warn(missing_docs)]

pub mod figures;
pub mod programs;
pub mod timer;
pub mod witness;
pub mod workloads;
