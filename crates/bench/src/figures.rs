//! Executable reproductions of every figure in the paper's evaluation.
//!
//! Each `fig*` function runs the relevant transformation(s) on the figure's
//! input program and returns a [`FigureReport`] with the before/after
//! programs (temporaries canonically renamed) and dynamic measurements on
//! corresponding runs. The `figures` binary prints all of them;
//! integration tests pin the load-bearing facts.

use am_core::global::optimize;
use am_core::lcm::{busy_expression_motion, lazy_expression_motion};
use am_core::motion::assignment_motion;
use am_core::restricted::restricted_assignment_motion;
use am_core::{copyprop, init};
use am_ir::alpha::canonical_text;
use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::text::{parse, parse_with_mode, Mode};
use am_ir::FlowGraph;

use crate::programs;

/// One measured variant of a figure's program.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Variant label (e.g. "original", "EM only").
    pub label: String,
    /// Total expression evaluations over the run batch.
    pub expr_evals: u64,
    /// Total assignment executions over the run batch.
    pub assign_execs: u64,
    /// Total temporary-assignment executions over the run batch.
    pub temp_assigns: u64,
    /// Completed runs in the batch.
    pub runs: usize,
}

/// The reproduction of one figure.
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Figure identifier, e.g. "fig05".
    pub id: &'static str,
    /// What the figure demonstrates.
    pub title: &'static str,
    /// The input program.
    pub before: String,
    /// The transformed program(s), labeled.
    pub after: Vec<(String, String)>,
    /// Dynamic measurements on corresponding runs.
    pub measurements: Vec<Measurement>,
    /// Observations worth pinning (asserted by the test suite).
    pub notes: Vec<String>,
}

/// Measures `g` over a batch of fixed oracles with the given inputs.
pub fn measure(label: &str, g: &FlowGraph, inputs: &[(String, i64)]) -> Measurement {
    let mut m = Measurement {
        label: label.to_owned(),
        expr_evals: 0,
        assign_execs: 0,
        temp_assigns: 0,
        runs: 0,
    };
    for seed in 0..32u64 {
        let cfg = Config {
            oracle: Oracle::random(seed.wrapping_mul(97).wrapping_add(13), 10),
            inputs: inputs.to_vec(),
            ..Config::default()
        };
        let r = run(g, &cfg);
        if r.stop == StopReason::ReachedEnd {
            m.runs += 1;
            m.expr_evals += r.expr_evals;
            m.assign_execs += r.assign_execs;
            m.temp_assigns += r.temp_assign_execs;
        }
    }
    m
}

fn split(src: &str) -> FlowGraph {
    let mut g = parse(src).expect("figure source parses");
    g.split_critical_edges();
    g
}

/// Fig. 1: expression motion shares the partially redundant `a+b`.
pub fn fig01_expression_motion() -> FigureReport {
    let original = parse(programs::FIG1).unwrap();
    let mut em = split(programs::FIG1);
    busy_expression_motion(&mut em);
    let inputs: Vec<(String, i64)> = vec![("a".into(), 2), ("b".into(), 3), ("y".into(), 1)];
    FigureReport {
        id: "fig01",
        title: "Expression motion (EM) shares a+b through a temporary",
        before: canonical_text(&original),
        after: vec![("EM (busy placement, Fig. 1b)".into(), canonical_text(&em))],
        measurements: vec![
            measure("original", &original, &inputs),
            measure("EM", &em, &inputs),
        ],
        notes: vec![
            "a+b is evaluated once per run after EM".into(),
            "the assignments themselves remain".into(),
        ],
    }
}

/// Fig. 2: assignment motion hoists the whole assignment out of the loop.
pub fn fig02_assignment_motion() -> FigureReport {
    let original = parse(programs::FIG2).unwrap();
    let mut am = split(programs::FIG2);
    assignment_motion(&mut am);
    let inputs: Vec<(String, i64)> = vec![("a".into(), 2), ("b".into(), 3), ("y".into(), 1)];
    FigureReport {
        id: "fig02",
        title: "Assignment motion (AM) hoists x := a+b out of the loop",
        before: canonical_text(&original),
        after: vec![("AM (Fig. 2b)".into(), canonical_text(&am))],
        measurements: vec![
            measure("original", &original, &inputs),
            measure("AM", &am, &inputs),
        ],
        notes: vec!["x := a+b occurs exactly once after AM".into()],
    }
}

/// Fig. 3: after the initialization transformation, AM subsumes EM.
pub fn fig03_uniform() -> FigureReport {
    let original = parse(programs::FIG1).unwrap();
    let mut g = split(programs::FIG1);
    init::initialize(&mut g);
    let initialized = canonical_text(&g);
    assignment_motion(&mut g);
    let inputs: Vec<(String, i64)> = vec![("a".into(), 2), ("b".into(), 3), ("y".into(), 1)];
    FigureReport {
        id: "fig03",
        title: "Initialization makes AM subsume EM (Fig. 3)",
        before: canonical_text(&original),
        after: vec![
            ("after initialization (Fig. 3a)".into(), initialized),
            ("after AM (Fig. 3b)".into(), canonical_text(&g)),
        ],
        measurements: vec![
            measure("original", &original, &inputs),
            measure("init+AM", &g, &inputs),
        ],
        notes: vec!["AM on the initialized program achieves the EM effect".into()],
    }
}

/// Fig. 4 → 5 (with Figs. 12, 14, 15 as phase snapshots): the full
/// algorithm on the running example.
pub fn fig05_global() -> FigureReport {
    let original = parse(programs::FIG4).unwrap();
    let result = optimize(&original);
    let inputs = programs::fig4_inputs();
    FigureReport {
        id: "fig05",
        title: "Uniform EM & AM on the running example (Figs. 4, 5, 12, 14, 15)",
        before: canonical_text(&original),
        after: vec![
            (
                "after initialization (Fig. 12)".into(),
                canonical_text(result.after_init.as_ref().unwrap()),
            ),
            (
                "after assignment motion (Fig. 14)".into(),
                canonical_text(result.after_motion.as_ref().unwrap()),
            ),
            (
                "final (Fig. 5 / 15)".into(),
                canonical_text(&result.program),
            ),
        ],
        measurements: vec![
            measure("original", &original, &inputs),
            measure("GlobAlg", &result.program, &inputs),
        ],
        notes: vec![
            format!(
                "assignment motion stabilized after {} rounds",
                result.motion.rounds
            ),
            "x := y+z left the loop; y := c+d eliminated; i := i+x and y+i untouched".into(),
        ],
    }
}

/// Fig. 6: the separate effects of EM and AM on the running example.
pub fn fig06_separate_effects() -> FigureReport {
    let original = parse(programs::FIG4).unwrap();
    let mut em = split(programs::FIG4);
    lazy_expression_motion(&mut em);
    let mut am = split(programs::FIG4);
    assignment_motion(&mut am);
    let full = optimize(&original).program;
    let inputs = programs::fig4_inputs();
    FigureReport {
        id: "fig06",
        title: "Separate effects: EM alone (Fig. 6a) and AM alone (Fig. 6b) both miss the loop-invariant assignment",
        before: canonical_text(&original),
        after: vec![
            ("EM only (Fig. 6a)".into(), canonical_text(&em)),
            ("AM only (Fig. 6b)".into(), canonical_text(&am)),
            ("uniform EM & AM (Fig. 5)".into(), canonical_text(&full)),
        ],
        measurements: vec![
            measure("original", &original, &inputs),
            measure("EM only", &em, &inputs),
            measure("AM only", &am, &inputs),
            measure("uniform EM & AM", &full, &inputs),
        ],
        notes: vec![
            "neither EM nor AM alone removes x := y+z from the loop".into(),
            "the uniform algorithm evaluates the fewest expressions".into(),
        ],
    }
}

/// Fig. 7: motion across loops, including an irreducible construct, without
/// ever moving into a loop.
pub fn fig07_loops() -> FigureReport {
    let original = parse(programs::FIG7).unwrap();
    assert!(
        !am_ir::analysis::is_reducible(&original),
        "Fig. 7 is irreducible"
    );
    let mut am = split(programs::FIG7);
    assignment_motion(&mut am);
    let inputs: Vec<(String, i64)> = vec![
        ("u".into(), 1),
        ("v".into(), 2),
        ("y".into(), 3),
        ("z".into(), 4),
    ];
    FigureReport {
        id: "fig07",
        title: "Loops: hoisting across an irreducible construct, never into a loop (Fig. 7)",
        before: canonical_text(&original),
        after: vec![("AM (Fig. 7b)".into(), canonical_text(&am))],
        measurements: vec![
            measure("original", &original, &inputs),
            measure("AM", &am, &inputs),
        ],
        notes: vec![
            "x := y+z from nodes 7, 9, 11 merged at node 6".into(),
            "node 6's instance stays (eliminating it would move code into the first loop)".into(),
            "the first loop's blocked occurrence is untouched".into(),
        ],
    }
}

/// Fig. 8/9: restricted vs. unrestricted assignment motion.
pub fn fig08_restricted() -> FigureReport {
    let original = parse(programs::FIG8).unwrap();
    let mut restricted = split(programs::FIG8);
    let rstats = restricted_assignment_motion(&mut restricted);
    let mut unrestricted = split(programs::FIG8);
    assignment_motion(&mut unrestricted);
    let inputs: Vec<(String, i64)> = vec![("y".into(), 3), ("z".into(), 4), ("p".into(), 1)];
    FigureReport {
        id: "fig08",
        title: "Restricted ('immediately profitable') AM fails where unrestricted AM succeeds (Figs. 8/9)",
        before: canonical_text(&original),
        after: vec![
            ("restricted AM (Fig. 8 — unchanged)".into(), canonical_text(&restricted)),
            ("unrestricted AM (Fig. 9b)".into(), canonical_text(&unrestricted)),
        ],
        measurements: vec![
            measure("original", &original, &inputs),
            measure("restricted", &restricted, &inputs),
            measure("unrestricted", &unrestricted, &inputs),
        ],
        notes: vec![
            format!(
                "restricted accepted {} hoistings (rejected {})",
                rstats.accepted, rstats.rejected
            ),
            "unrestricted removes x := y+z from the join block".into(),
        ],
    }
}

/// Fig. 10: critical edge splitting.
pub fn fig10_critical_edges() -> FigureReport {
    let original = parse(programs::FIG10).unwrap();
    let mut splitg = original.clone();
    let count = splitg.split_critical_edges();
    let mut am = splitg.clone();
    assignment_motion(&mut am);
    let inputs: Vec<(String, i64)> = vec![("a".into(), 1), ("b".into(), 2), ("p".into(), 0)];
    FigureReport {
        id: "fig10",
        title: "Critical edges block motion until split by synthetic nodes (Fig. 10)",
        before: canonical_text(&original),
        after: vec![
            (format!("{count} edge(s) split"), canonical_text(&splitg)),
            ("AM on the split graph".into(), canonical_text(&am)),
        ],
        measurements: vec![
            measure("original", &original, &inputs),
            measure("AM after splitting", &am, &inputs),
        ],
        notes: vec![
            "the partially redundant x := a+b at node 3 is eliminated after splitting".into(),
        ],
    }
}

/// Fig. 13: hoisting candidates within a basic block.
pub fn fig13_candidates() -> FigureReport {
    let g = parse(programs::FIG13).unwrap();
    let analysis = am_core::hoist::analyze_hoisting(&g);
    let n1 = g.start();
    let mut notes = Vec::new();
    for (pat, idx) in &analysis.candidates[n1.index()] {
        notes.push(format!(
            "candidate: '{}' at instruction {idx}",
            analysis.universe.assign(*pat).display(g.pool())
        ));
    }
    FigureReport {
        id: "fig13",
        title: "Hoisting candidates: only the first unblocked occurrence qualifies (Fig. 13)",
        before: canonical_text(&g),
        after: vec![],
        measurements: vec![],
        notes,
    }
}

/// Fig. 16/17: expression optimality is compatible only with *relative*
/// assignment and temporary optimality. We verify the relative-optimality
/// fixpoint property on the reconstruction and report the per-path costs.
pub fn fig16_incomparable() -> FigureReport {
    let original = parse(programs::FIG16).unwrap();
    let result = optimize(&original);
    // Relative optimality: the result is a fixpoint of further motion.
    let mut again = result.program.clone();
    let stats2 = am_core::motion::assignment_motion(&mut again);
    let refix = again == result.program;
    let per_path = |g: &FlowGraph, p: i64| {
        let r = run(
            g,
            &Config::with_inputs(vec![("p", p), ("c", 1), ("d", 2), ("a", 5), ("b", 6)]),
        );
        (r.expr_evals, r.assign_execs)
    };
    let (e1, a1) = per_path(&result.program, 1);
    let (e2, a2) = per_path(&result.program, 0);
    FigureReport {
        id: "fig16",
        title: "Expression optimality with relative assignment/temporary optimality (Figs. 16/17, reconstruction)",
        before: canonical_text(&original),
        after: vec![("GlobAlg".into(), canonical_text(&result.program))],
        measurements: vec![
            measure("original", &original, &programs::fig4_inputs()),
            measure("GlobAlg", &result.program, &programs::fig4_inputs()),
        ],
        notes: vec![
            format!("path via node 1: {e1} evaluations, {a1} assignments"),
            format!("path via node 2: {e2} evaluations, {a2} assignments"),
            format!(
                "re-running assignment motion is the identity (relative optimality): {refix} ({} rounds)",
                stats2.rounds
            ),
        ],
    }
}

/// Figs. 18–20: complex expressions vs 3-address code. EM gets stuck on the
/// decomposed form (Fig. 19b), EM+CP partially recovers (Fig. 20a), and the
/// uniform algorithm beats both by emptying the loop (Fig. 20b).
pub fn fig18_three_address() -> FigureReport {
    let decomposed = parse_with_mode(programs::FIG18, Mode::Decompose).unwrap();

    // Fig. 19(b): EM alone on the 3-address form.
    let mut em = decomposed.clone();
    em.split_critical_edges();
    lazy_expression_motion(&mut em);

    // Fig. 20(a): EM interleaved with copy propagation.
    let mut emcp = decomposed.clone();
    emcp.split_critical_edges();
    for _ in 0..4 {
        let before = emcp.clone();
        lazy_expression_motion(&mut emcp);
        copyprop::copy_propagation(&mut emcp, true);
        if emcp == before {
            break;
        }
    }

    // Fig. 20(b): the uniform algorithm.
    let full = optimize(&decomposed).program;

    let inputs: Vec<(String, i64)> = vec![
        ("a".into(), 1),
        ("b".into(), 2),
        ("c".into(), 3),
        ("q".into(), 5),
    ];
    FigureReport {
        id: "fig18",
        title:
            "3-address decomposition: EM stuck, EM+CP partial, uniform EM & AM wins (Figs. 18-20)",
        before: canonical_text(&decomposed),
        after: vec![
            ("EM only (Fig. 19b)".into(), canonical_text(&em)),
            (
                "EM + copy propagation (Fig. 20a)".into(),
                canonical_text(&emcp),
            ),
            ("uniform EM & AM (Fig. 20b)".into(), canonical_text(&full)),
        ],
        measurements: vec![
            measure("original (3-address)", &decomposed, &inputs),
            measure("EM only", &em, &inputs),
            measure("EM + CP", &emcp, &inputs),
            measure("uniform EM & AM", &full, &inputs),
        ],
        notes: vec![
            "t+c is not loop-invariant for EM (t is assigned in the loop)".into(),
            "copy propagation re-exposes the invariance; the uniform algorithm needs no CP".into(),
        ],
    }
}

/// All figure reproductions, in paper order.
pub fn all_reports() -> Vec<FigureReport> {
    vec![
        fig01_expression_motion(),
        fig02_assignment_motion(),
        fig03_uniform(),
        fig05_global(),
        fig06_separate_effects(),
        fig07_loops(),
        fig08_restricted(),
        fig10_critical_edges(),
        fig13_candidates(),
        fig16_incomparable(),
        fig18_three_address(),
    ]
}
