//! A minimal wall-clock benchmark harness (the workspace builds offline,
//! so the benches cannot use Criterion). Each measurement runs a warmup,
//! then `iters` timed iterations, reporting mean and minimum.

use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark label, e.g. `figures/fig05_global`.
    pub label: String,
    /// Timed iterations.
    pub iters: u32,
    /// Mean wall time per iteration.
    pub mean: Duration,
    /// Minimum wall time over all iterations.
    pub min: Duration,
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>12} mean {:>12} min   ({} iters)",
            self.label,
            format!("{:.2?}", self.mean),
            format!("{:.2?}", self.min),
            self.iters
        )
    }
}

/// Times `f` over `iters` iterations (after `iters / 10 + 1` warmup runs)
/// and prints the result. Returns the measurement for further aggregation.
pub fn bench(label: &str, iters: u32, mut f: impl FnMut()) -> BenchResult {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
    }
    let result = BenchResult {
        label: label.to_owned(),
        iters,
        mean: total / iters.max(1),
        min,
    };
    println!("{result}");
    result
}

/// Iteration count override from `BENCH_ITERS`, else `default`.
pub fn iters_from_env(default: u32) -> u32 {
    std::env::var("BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
