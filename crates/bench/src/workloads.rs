//! Workload families and measurement for the complexity study (Sec. 4.5).
//!
//! The paper claims the global algorithm is "essentially quadratic" for
//! realistic structured programs and up to fourth order in the unrestricted
//! worst case. [`structured_sweep`]/[`unstructured_sweep`] regenerate that
//! study: program families swept over size, measuring wall time, assignment
//! motion rounds and total data-flow solver iterations.

use std::fmt::Write as _;
use std::time::Instant;

use am_core::global::{optimize_with, GlobalConfig};
use am_ir::random::SplitMix64;
use am_ir::random::{unstructured, UnstructuredConfig};
use am_ir::text::parse;
use am_ir::FlowGraph;

/// A deterministic nest of `depth` do-while loops, each body carrying
/// `width` assignment patterns: one loop-invariant chain (hoistable, with
/// second-order dependencies) and one induction-style update per slot.
///
/// Do-while loops make the invariants admissibly hoistable (their bodies
/// are unavoidable), so the motion phase has real work at every level.
pub fn loop_nest(depth: usize, width: usize) -> FlowGraph {
    let depth = depth.max(1);
    let width = width.max(1);
    let mut src = String::new();
    let _ = writeln!(src, "start init");
    let _ = writeln!(src, "end done");
    let mut inits = String::from("s := 0");
    for k in 0..depth {
        let _ = write!(inits, "; i{k} := n");
    }
    let _ = writeln!(src, "node init {{ {inits} }}");
    for k in 0..depth {
        let mut body = String::new();
        for j in 0..width {
            // An invariant chain: w depends on the previous slot's w, so
            // hoisting slot j+1 requires slot j to move first (second-order
            // effects at every level).
            if j == 0 {
                let _ = write!(body, "w{k}_0 := a + {k}; ");
            } else {
                let prev = j - 1;
                let _ = write!(body, "w{k}_{j} := w{k}_{prev} + {j}; ");
            }
        }
        let _ = write!(body, "s := s + w{k}_{}", width - 1);
        let _ = writeln!(src, "node head{k} {{ {body} }}");
        let _ = writeln!(src, "node latch{k} {{ i{k} := i{k} - 1; branch i{k} > 0 }}");
    }
    let _ = writeln!(src, "node done {{ out(s) }}");
    // Wiring: init -> head0; headk -> head(k+1) ... innermost -> latch(d-1);
    // latchk -> headk (back) | latch(k-1) (exit); latch0 exits to done.
    let _ = writeln!(src, "edge init -> head0");
    for k in 0..depth {
        if k + 1 < depth {
            let _ = writeln!(src, "edge head{k} -> head{}", k + 1);
        } else {
            let _ = writeln!(src, "edge head{k} -> latch{k}");
        }
    }
    for k in (0..depth).rev() {
        let exit = if k == 0 {
            "done".to_owned()
        } else {
            format!("latch{}", k - 1)
        };
        let _ = writeln!(src, "edge latch{k} -> head{k}, {exit}");
    }
    parse(&src).expect("generated loop nest parses")
}

/// A straight-line/diamond chain of `sections` sections, each containing
/// `width` assignments with one partially redundant pattern per diamond —
/// cheap per-round work, many patterns.
pub fn diamond_chain(sections: usize, width: usize) -> FlowGraph {
    let sections = sections.max(1);
    let width = width.max(1);
    let mut src = String::new();
    let _ = writeln!(src, "start n0");
    let _ = writeln!(src, "end done");
    let _ = writeln!(src, "node n0 {{ skip }}");
    for k in 0..sections {
        let mut left = String::new();
        let mut right = String::new();
        for j in 0..width {
            let _ = write!(left, "x{j} := a + {j}; ");
            let _ = write!(right, "x{j} := a + {j}; ");
        }
        let _ = writeln!(src, "node l{k} {{ {left}skip }}");
        let _ = writeln!(src, "node r{k} {{ {right}skip }}");
        let _ = writeln!(src, "node j{k} {{ y{k} := x0 + b }}");
        let prev = if k == 0 {
            "n0".to_owned()
        } else {
            format!("j{}", k - 1)
        };
        let _ = writeln!(src, "edge {prev} -> l{k}, r{k}");
        let _ = writeln!(src, "edge l{k} -> j{k}");
        let _ = writeln!(src, "edge r{k} -> j{k}");
    }
    let _ = writeln!(src, "node done {{ out(y0) }}");
    let _ = writeln!(src, "edge j{} -> done", sections - 1);
    parse(&src).expect("generated diamond chain parses")
}

/// A while-language benchmark program: `bodies` nested do-while loops,
/// each with an invariant chain and induction updates — compiled through
/// the `am-lang` frontend (parser + 3-address lowering), so the sweep also
/// exercises the full stack.
pub fn while_workload(bodies: usize, chain: usize) -> FlowGraph {
    use std::fmt::Write as _;
    let bodies = bodies.max(1);
    let chain = chain.max(1);
    let mut src = String::from("acc := 0;\n");
    for k in 0..bodies {
        let _ = writeln!(src, "i{k} := n;");
        let _ = writeln!(src, "do {{");
        for j in 0..chain {
            if j == 0 {
                let _ = writeln!(src, "  w{k}_0 := base + {k};");
            } else {
                let _ = writeln!(src, "  w{k}_{j} := w{k}_{} * 3 + {j};", j - 1);
            }
        }
        let _ = writeln!(src, "  acc := acc + w{k}_{} + i{k};", chain - 1);
        let _ = writeln!(src, "  i{k} := i{k} - 1;");
        let _ = writeln!(src, "}} while (i{k} > 0);");
    }
    src.push_str("print(acc);\n");
    am_lang::compile(&src).expect("generated while program compiles")
}

/// XL family: a long sequence of `copies` shallow loop nests (each
/// `depth` deep, `width` invariant patterns per level) that share their
/// loop-invariant variables, so hoisted initializations become redundant
/// across consecutive copies — the motion fixed point has real work at
/// 10k+ nodes without the round count growing with program size (rounds
/// depend on the nest shape, which is constant).
///
/// All copies share one pattern set, so the universe (and the round
/// count) is fixed by `depth * width` while the graph grows without
/// bound — the wide-universe regime is covered by [`wide_fan`] and
/// [`inlined_program`] instead.
pub fn nest_grid(copies: usize, depth: usize, width: usize) -> FlowGraph {
    let copies = copies.max(1);
    let depth = depth.max(1);
    let width = width.max(1);
    let mut src = String::new();
    let _ = writeln!(src, "start init");
    let _ = writeln!(src, "end done");
    let _ = writeln!(src, "node init {{ s := 0 }}");
    let _ = writeln!(src, "node done {{ out(s) }}");
    for c in 0..copies {
        // Re-initialize the shared loop counters: keeps the counter
        // patterns (`ik := n`, `ik := ik - 1`) shared across every copy
        // instead of minting `copies * depth` distinct patterns.
        let mut pre = String::new();
        for k in 0..depth {
            if k > 0 {
                let _ = write!(pre, "; ");
            }
            let _ = write!(pre, "i{k} := n");
        }
        let _ = writeln!(src, "node pre{c} {{ {pre} }}");
        for k in 0..depth {
            let mut body = String::new();
            for j in 0..width {
                // Independent invariants (no slot-to-slot chain): the
                // round count stays flat as `copies` grows.
                let konst = k * width + j;
                let _ = write!(body, "w{k}_{j} := a + {konst}; ");
            }
            let _ = write!(body, "s := s + w{k}_{}", width - 1);
            let _ = writeln!(src, "node head{c}_{k} {{ {body} }}");
            let _ = writeln!(
                src,
                "node latch{c}_{k} {{ i{k} := i{k} - 1; branch i{k} > 0 }}"
            );
        }
        if c == 0 {
            let _ = writeln!(src, "edge init -> pre0");
        }
        let _ = writeln!(src, "edge pre{c} -> head{c}_0");
        for k in 0..depth {
            if k + 1 < depth {
                let _ = writeln!(src, "edge head{c}_{k} -> head{c}_{}", k + 1);
            } else {
                let _ = writeln!(src, "edge head{c}_{k} -> latch{c}_{k}");
            }
        }
        for k in (0..depth).rev() {
            let exit = if k == 0 {
                if c + 1 < copies {
                    format!("pre{}", c + 1)
                } else {
                    "done".to_owned()
                }
            } else {
                format!("latch{c}_{}", k - 1)
            };
            let _ = writeln!(src, "edge latch{c}_{k} -> head{c}_{k}, {exit}");
        }
    }
    parse(&src).expect("generated nest grid parses")
}

/// XL family: one `branches`-way fan — every branch computes the same
/// `width` patterns (hoistable into the entry, eliminable in the leaves)
/// plus one pattern unique to its block of 128 leaves (widening the
/// universe with size). Exercises very wide confluence merges and gives
/// the point-partitioned solver its best case: the leaves are mutually
/// independent, so almost the whole graph solves in one parallel wave.
pub fn wide_fan(branches: usize, width: usize) -> FlowGraph {
    let branches = branches.max(2);
    let width = width.max(1);
    let mut src = String::new();
    let _ = writeln!(src, "start entry");
    let _ = writeln!(src, "end done");
    let _ = writeln!(src, "node entry {{ skip }}");
    for t in 0..branches {
        let mut body = String::new();
        for j in 0..width {
            let _ = write!(body, "x{j} := a + {j}; ");
        }
        let _ = write!(body, "y := a + {}", 1000 + t / 128);
        let _ = writeln!(src, "node b{t} {{ {body} }}");
    }
    let _ = writeln!(src, "node join {{ s := x0 + y }}");
    let _ = writeln!(src, "node done {{ out(s) }}");
    let leaves = (0..branches).map(|t| format!("b{t}")).collect::<Vec<_>>();
    let _ = writeln!(src, "edge entry -> {}", leaves.join(", "));
    for t in 0..branches {
        let _ = writeln!(src, "edge b{t} -> join");
    }
    let _ = writeln!(src, "edge join -> done");
    parse(&src).expect("generated wide fan parses")
}

/// XL family: the shape of a program after heavy inlining — `calls` call
/// sites, each a branch diamond whose two arms carry the body of one of
/// `procs` distinct procedures (so every `procs`-th site repeats the same
/// code and the eliminator has cross-site work). Sites are spread over 8
/// parallel lanes joined at the end, giving the partitioned solver
/// lane-level parallelism on an otherwise chain-shaped program.
pub fn inlined_program(calls: usize, procs: usize) -> FlowGraph {
    const LANES: usize = 8;
    let calls = calls.max(LANES);
    let procs = procs.max(1);
    let mut src = String::new();
    let _ = writeln!(src, "start entry");
    let _ = writeln!(src, "end done");
    let _ = writeln!(src, "node entry {{ acc := 0 }}");
    let per_lane = calls.div_ceil(LANES);
    for lane in 0..LANES {
        for i in 0..per_lane {
            let site = lane * per_lane + i;
            let p = site % procs;
            // The inlined body: a tiny dependent chain per procedure.
            // Redefining `x` at each site head kills the chain's source
            // operand between sites, so motion is confined to one
            // diamond (arms hoist into their own head) and the round
            // count stays flat as `calls` grows instead of code
            // creeping up the whole chain one diamond per round.
            let body = format!("t{p}_0 := x + {p}; t{p}_1 := t{p}_0 + 1; acc := acc + t{p}_1");
            let _ = writeln!(
                src,
                "node h{lane}_{i} {{ x := x + 1; branch x > {} }}",
                site % 7
            );
            let _ = writeln!(src, "node a{lane}_{i} {{ {body} }}");
            let _ = writeln!(src, "node b{lane}_{i} {{ {body} }}");
            if i == 0 {
                let _ = writeln!(src, "edge entry -> h{lane}_0");
            } else {
                let _ = writeln!(src, "edge a{lane}_{} -> h{lane}_{i}", i - 1);
                let _ = writeln!(src, "edge b{lane}_{} -> h{lane}_{i}", i - 1);
            }
            let _ = writeln!(src, "edge h{lane}_{i} -> a{lane}_{i}, b{lane}_{i}");
        }
        let _ = writeln!(src, "edge a{lane}_{} -> join", per_lane - 1);
        let _ = writeln!(src, "edge b{lane}_{} -> join", per_lane - 1);
    }
    let _ = writeln!(src, "node join {{ skip }}");
    let _ = writeln!(src, "node done {{ out(acc) }}");
    let _ = writeln!(src, "edge join -> done");
    parse(&src).expect("generated inlined program parses")
}

/// One measured data point of the complexity study.
#[derive(Clone, Debug)]
pub struct ComplexityRow {
    /// Workload label.
    pub label: String,
    /// Nodes before optimization.
    pub nodes: usize,
    /// Instructions before optimization.
    pub instrs: usize,
    /// Wall time of the full pipeline, in microseconds.
    pub micros: u128,
    /// Assignment-motion rounds until stabilization.
    pub motion_rounds: usize,
    /// Total data-flow solver iterations across all phases.
    pub solver_iterations: u64,
    /// Whether the motion phase converged within budget.
    pub converged: bool,
}

/// Runs the full pipeline on `g` and records the complexity metrics.
pub fn measure_complexity(label: &str, g: &FlowGraph) -> ComplexityRow {
    measure_complexity_workers(label, g, 1)
}

/// Like [`measure_complexity`], but solving cold fixpoints on `workers`
/// threads (1 = the serial scheduled solver; the result is bit-identical
/// either way, only the wall time moves).
pub fn measure_complexity_workers(label: &str, g: &FlowGraph, workers: usize) -> ComplexityRow {
    let config = GlobalConfig {
        keep_snapshots: false,
        solver_workers: workers.max(1),
        ..Default::default()
    };
    let start = Instant::now();
    let result = optimize_with(g, &config);
    let micros = start.elapsed().as_micros();
    ComplexityRow {
        label: label.to_owned(),
        nodes: g.node_count(),
        instrs: g.instr_count(),
        micros,
        motion_rounds: result.motion.rounds,
        solver_iterations: result.motion.iterations + result.flush.iterations,
        converged: result.motion.converged,
    }
}

/// The structured sweep: loop nests of growing depth and width.
pub fn structured_sweep() -> Vec<ComplexityRow> {
    let mut rows = Vec::new();
    for (depth, width) in [
        (1, 2),
        (2, 2),
        (2, 4),
        (3, 4),
        (4, 4),
        (4, 8),
        (6, 8),
        (8, 8),
    ] {
        let g = loop_nest(depth, width);
        rows.push(measure_complexity(&format!("nest d={depth} w={width}"), &g));
    }
    for sections in [2, 4, 8, 16, 32] {
        let g = diamond_chain(sections, 4);
        rows.push(measure_complexity(&format!("diamonds s={sections}"), &g));
    }
    for (bodies, chain) in [(1, 3), (2, 3), (4, 3), (4, 6), (8, 6)] {
        let g = while_workload(bodies, chain);
        rows.push(measure_complexity(
            &format!("whilelang b={bodies} c={chain}"),
            &g,
        ));
    }
    rows
}

/// The unstructured sweep: random graphs of growing node count.
pub fn unstructured_sweep() -> Vec<ComplexityRow> {
    let mut rows = Vec::new();
    for nodes in [8, 16, 32, 64, 128] {
        let mut rng = SplitMix64::new(nodes as u64);
        let g = unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes,
                extra_edges: nodes / 2,
                max_instrs: 4,
                num_vars: 6,
                allow_div: false,
            },
        );
        rows.push(measure_complexity(&format!("random n={nodes}"), &g));
    }
    rows
}

/// A deterministic corpus of in-memory jobs for the batch pipeline:
/// `unique` distinct random structured programs, each repeated `dups`
/// times under different names, shuffled into an interleaved order. The
/// duplicates make the content-addressed cache earn its keep.
pub fn pipeline_corpus(unique: usize, dups: usize) -> Vec<am_pipeline::Job> {
    use am_ir::random::{structured, StructuredConfig};
    use am_ir::text::to_text;
    let unique = unique.max(1);
    let dups = dups.max(1);
    let mut jobs = Vec::with_capacity(unique * dups);
    for copy in 0..dups {
        for idx in 0..unique {
            let mut rng = SplitMix64::new(0xC0_6905 + idx as u64);
            let g = structured(&mut rng, &StructuredConfig::default());
            jobs.push(am_pipeline::Job::from_source(
                format!("mem/{idx}_{copy}.ir"),
                am_lang::SourceKind::Ir,
                to_text(&g),
            ));
        }
    }
    jobs
}

/// One data point of the pipeline throughput study.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Jobs served from the result cache.
    pub cache_hits: usize,
    /// Batch wall time in microseconds.
    pub micros: u128,
    /// Jobs per second.
    pub jobs_per_sec: f64,
}

/// Runs the corpus through `am_pipeline` once per worker count and
/// reports throughput — the `pipeline_throughput` workload.
pub fn pipeline_throughput(
    unique: usize,
    dups: usize,
    worker_counts: &[usize],
) -> Vec<ThroughputRow> {
    let jobs = pipeline_corpus(unique, dups);
    worker_counts
        .iter()
        .map(|&workers| {
            let pipeline = am_pipeline::Pipeline::new(am_pipeline::PipelineConfig {
                workers: Some(workers),
                ..Default::default()
            });
            let report = pipeline.run(&jobs);
            let secs = report.wall.as_secs_f64();
            ThroughputRow {
                workers,
                jobs: report.jobs.len(),
                cache_hits: report.cache_hits(),
                micros: report.wall.as_micros(),
                jobs_per_sec: if secs > 0.0 {
                    jobs.len() as f64 / secs
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect()
}

/// Least-squares slope of `ln(time)` over `ln(size)` — the empirical
/// scaling exponent of a sweep.
pub fn fit_exponent(rows: &[ComplexityRow]) -> f64 {
    fit_log_log(
        rows.iter()
            .filter(|r| r.micros > 0 && r.instrs > 0)
            .map(|r| ((r.instrs as f64).ln(), (r.micros as f64).ln()))
            .collect(),
    )
}

/// Fitted exponent of wall time against *node count* — the axis the XL
/// ladder scales along (Sec. 4.5 frames the complexity claim per node).
pub fn fit_nodes_exponent(rows: &[ComplexityRow]) -> f64 {
    fit_log_log(
        rows.iter()
            .filter(|r| r.micros > 0 && r.nodes > 0)
            .map(|r| ((r.nodes as f64).ln(), (r.micros as f64).ln()))
            .collect(),
    )
}

fn fit_log_log(points: Vec<(f64, f64)>) -> f64 {
    if points.len() < 2 {
        return f64::NAN;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_nest_is_valid_and_scales() {
        let small = loop_nest(1, 1);
        let large = loop_nest(4, 6);
        assert_eq!(small.validate(), Ok(()));
        assert_eq!(large.validate(), Ok(()));
        assert!(large.instr_count() > small.instr_count());
        assert!(am_ir::analysis::is_reducible(&large));
    }

    #[test]
    fn diamond_chain_is_valid() {
        let g = diamond_chain(5, 3);
        assert_eq!(g.validate(), Ok(()));
        assert!(g.node_count() >= 5 * 3);
    }

    #[test]
    fn nest_grid_is_valid_and_scales() {
        let small = nest_grid(2, 2, 2);
        let large = nest_grid(40, 2, 4);
        assert_eq!(small.validate(), Ok(()));
        assert_eq!(large.validate(), Ok(()));
        assert!(large.node_count() > 40 * 4);
        assert!(am_ir::analysis::is_reducible(&large));
    }

    #[test]
    fn nest_grid_rounds_stay_flat_as_copies_grow() {
        // The whole point of the family: 4x the program must not mean
        // more motion rounds, or XL rungs measure round count, not
        // solver throughput.
        let small = measure_complexity("s", &nest_grid(5, 2, 4));
        let large = measure_complexity("l", &nest_grid(20, 2, 4));
        assert!(small.converged && large.converged);
        assert!(
            large.motion_rounds <= small.motion_rounds + 1,
            "rounds grew with copies: {} -> {}",
            small.motion_rounds,
            large.motion_rounds
        );
    }

    #[test]
    fn wide_fan_is_valid_and_optimizes() {
        let g = wide_fan(64, 4);
        assert_eq!(g.validate(), Ok(()));
        assert!(g.node_count() >= 64 + 3);
        let row = measure_complexity("fan", &g);
        assert!(row.converged);
    }

    #[test]
    fn inlined_program_is_valid_and_optimizes() {
        let g = inlined_program(64, 6);
        assert_eq!(g.validate(), Ok(()));
        assert!(g.node_count() >= 64 * 3);
        let row = measure_complexity("inline", &g);
        assert!(row.converged);
    }

    #[test]
    fn xl_families_are_worker_count_deterministic() {
        use am_core::global::{optimize_with, GlobalConfig};
        for g in [nest_grid(6, 2, 3), wide_fan(48, 3), inlined_program(48, 5)] {
            let serial = optimize_with(&g, &GlobalConfig::default());
            let parallel = optimize_with(
                &g,
                &GlobalConfig {
                    solver_workers: 8,
                    ..Default::default()
                },
            );
            assert_eq!(
                am_ir::text::to_text(&serial.program),
                am_ir::text::to_text(&parallel.program)
            );
        }
    }

    #[test]
    fn loop_nest_optimizes_and_converges() {
        let g = loop_nest(3, 4);
        let row = measure_complexity("t", &g);
        assert!(row.converged);
        assert!(row.motion_rounds >= 2, "second-order chain needs rounds");
    }

    #[test]
    fn loop_nest_semantics_preserved_through_pipeline() {
        use am_core::global::optimize;
        use am_ir::interp::{run, Config};
        let g = loop_nest(2, 3);
        let opt = optimize(&g).program;
        for n in [1, 2, 4] {
            let cfg = Config::with_inputs(vec![("n", n), ("a", 7)]);
            let r0 = run(&g, &cfg);
            let r1 = run(&opt, &cfg);
            assert_eq!(r0.observable(), r1.observable(), "n={n}");
            assert!(r1.expr_evals <= r0.expr_evals, "n={n}");
        }
    }

    #[test]
    fn exponent_fit_on_synthetic_data() {
        let rows: Vec<ComplexityRow> = [(10usize, 100u128), (20, 400), (40, 1600)]
            .into_iter()
            .map(|(instrs, micros)| ComplexityRow {
                label: "synthetic".into(),
                nodes: 1,
                instrs,
                micros,
                motion_rounds: 1,
                solver_iterations: 1,
                converged: true,
            })
            .collect();
        let k = fit_exponent(&rows);
        assert!((k - 2.0).abs() < 1e-9, "{k}");
    }
}

#[cfg(test)]
mod pipeline_workload_tests {
    use super::*;

    #[test]
    fn corpus_duplicates_hit_the_cache() {
        let rows = pipeline_throughput(4, 3, &[2]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].jobs, 12);
        // A duplicate in flight while its original is still optimizing on
        // the other worker misses (both then insert the same entry), so
        // each unique program is optimized at most `workers` times:
        // 12 jobs - 4 unique * 2 workers => at least 4 hits.
        assert!(rows[0].cache_hits >= 4, "{rows:?}");
    }
}

#[cfg(test)]
mod while_workload_tests {
    use super::*;
    use am_core::global::optimize;
    use am_ir::interp::{run, Config};

    #[test]
    fn while_workload_compiles_and_optimizes() {
        let g = while_workload(2, 3);
        assert_eq!(g.validate(), Ok(()));
        let opt = optimize(&g).program;
        for n in [1, 3] {
            let cfg = Config::with_inputs(vec![("n", n), ("base", 10)]);
            let a = run(&g, &cfg);
            let b = run(&opt, &cfg);
            assert_eq!(a.observable(), b.observable(), "n={n}");
            assert!(b.expr_evals <= a.expr_evals);
        }
    }
}
