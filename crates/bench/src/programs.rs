//! The input programs of every figure in the paper, as textual IR.
//!
//! Where the scanned source is unambiguous the graphs are exact; Fig. 7 and
//! Fig. 16 are reconstructions that preserve the properties the paper uses
//! them for (documented in EXPERIMENTS.md).

/// Fig. 1(a)/3(a): partially redundant expression `a+b` on both branches.
pub const FIG1: &str = "
    start 1
    end 4
    node 1 { skip }
    node 2 { z := a+b; x := a+b }
    node 3 { x := a+b; y := x+y }
    node 4 { out(x,y,z) }
    edge 1 -> 2, 3
    edge 2 -> 4
    edge 3 -> 4
";

/// Fig. 2(a): the *assignment* `x := a+b` re-executed in a loop.
pub const FIG2: &str = "
    start 1
    end 5
    node 1 { skip }
    node 2 { z := a+b; x := a+b }
    node 3 { x := a+b; y := x+y }
    node w { skip }
    node 4 { out(x,y) }
    node 5 { skip }
    edge 1 -> 2, 3
    edge 2 -> 4
    edge 3 -> w
    edge w -> 3, 4
    edge 4 -> 5
";

/// Fig. 4: the running example.
pub const FIG4: &str = "
    start 1
    end 4
    node 1 { y := c+d }
    node 2 { branch x+z > y+i }
    node 3 { y := c+d; x := y+z; i := i+x }
    node 4 { x := y+z; x := c+d; out(i,x,y) }
    edge 1 -> 2
    edge 2 -> 3, 4
    edge 3 -> 2
";

/// Fig. 7 (reconstruction): two loop constructs, the second irreducible.
/// `x := y+z` occurs at nodes 7, 9 and 11 and is hoistable to node 6 —
/// across the irreducible construct — while the occurrence inside the first
/// loop (node 3) is locally blocked, so node 6's instance stays partially
/// redundant (eliminating it would require motion *into* the first loop).
pub const FIG7: &str = "
    start 1
    end 12
    node 1 { w := u+v }
    node 2 { branch w > 0 }
    node 3 { y := w; x := y+z }
    node 6 { skip }
    node 7 { x := y+z }
    node 8 { skip }
    node 9 { x := y+z }
    node 10 { skip }
    node 11 { x := y+z }
    node 12 { out(x) }
    edge 1 -> 2
    edge 2 -> 3, 6
    edge 3 -> 2
    edge 6 -> 7, 8, 10
    edge 7 -> 12
    edge 8 -> 9
    edge 9 -> 11, 12
    edge 10 -> 11
    edge 11 -> 9, 12
";

/// Fig. 8: the restricted-motion counterexample. The blocker `a := x+y` in
/// the join block is not itself partially redundant, so a
/// profitable-hoistings-only algorithm never moves it and the partially
/// redundant `x := y+z` survives.
pub const FIG8: &str = "
    start 0
    end e
    node 0 { branch p > 0 }
    node 1 { x := y+z }
    node 3 { skip }
    node 4 { a := x+y; x := y+z; out(a,x) }
    node e { skip }
    edge 0 -> 1, 3
    edge 1 -> 4
    edge 3 -> 4
    edge 4 -> e
";

/// Fig. 10(a): the critical edge (2,3).
pub const FIG10: &str = "
    start s
    end e
    node s { skip }
    node 1 { x := a+b }
    node 2 { branch p > 0 }
    node 3 { x := a+b }
    node e { out(x) }
    edge s -> 1, 2
    edge 1 -> 3
    edge 2 -> 3, e
    edge 3 -> e
";

/// Fig. 13: hoisting candidates within one block.
pub const FIG13: &str = "
    start 1
    end 2
    node 1 { x := d; y := a+b; x := 3*y; a := c; y := a+b }
    node 2 { out(x,y) }
    edge 1 -> 2
";

/// Fig. 16 (reconstruction): a program with two *incomparable*
/// expression-optimal solutions. `c+d` must be shared across both entry
/// branches and `a+b` at the join is computed from an `a` that one branch
/// redefines; placing the `a+b` initialization early or late trades
/// assignment executions between the two paths.
pub const FIG16: &str = "
    start s
    end e
    node s { branch p > 0 }
    node 1 { a := c+d }
    node 2 { b := c+d }
    node 3 { skip }
    node 4 { skip }
    node 6 { x := a+b; a := c+d; out(x,a,b) }
    node e { skip }
    edge s -> 1, 2
    edge 1 -> 3
    edge 2 -> 3
    edge 3 -> 4
    edge 4 -> 6
    edge 6 -> e
";

/// Fig. 18(a): a complex expression, loop-invariant in a do-while loop.
/// Parsed with `Mode::Decompose` this becomes Fig. 18(b)'s 3-address form
/// `t1 := a+b; x := t1+c`.
pub const FIG18: &str = "
    start 0
    end 3
    node 0 { skip }
    node 1 { x := a+b+c }
    node 2 { branch q > 0 }
    node 3 { out(x) }
    edge 0 -> 1
    edge 1 -> 2
    edge 2 -> 1, 3
";

/// The running example's inputs for dynamic measurements.
pub fn fig4_inputs() -> Vec<(String, i64)> {
    [("c", 1), ("d", 2), ("x", 3), ("z", 4), ("i", 0), ("y", 7)]
        .into_iter()
        .map(|(n, v)| (n.to_owned(), v))
        .collect()
}
