//! Machinery for finding Fig. 16/17-style *incomparability witnesses*:
//! pairs of expression-optimal programs in the universe `G` whose
//! assignment-execution profiles are incomparable (each strictly better on
//! some run). Within a fixed initialization, assignment motion is
//! confluent, so the search varies the *expression motion* choice — which
//! decomposable occurrences get a temporary — and optionally applies the
//! flush.

use am_core::flush::final_flush;
use am_core::motion::assignment_motion;
use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::{Cond, FlowGraph, Instr, Loc, Term};

/// Per-oracle `(expression evaluations, assignment executions)` profile;
/// `None` when some run did not complete (profiles must be comparable).
pub fn profile(g: &FlowGraph, oracles: usize) -> Option<Vec<(u64, u64)>> {
    let mut out = Vec::new();
    for seed in 0..oracles as u64 {
        let cfg = Config {
            oracle: Oracle::random(seed * 37 + 5, 10),
            inputs: vec![
                ("v0".into(), 2),
                ("v1".into(), -3),
                ("v2".into(), 5),
                ("v3".into(), 1),
            ],
            ..Config::default()
        };
        let r = run(g, &cfg);
        if r.stop != StopReason::ReachedEnd {
            return None;
        }
        out.push((r.expr_evals, r.assign_execs));
    }
    Some(out)
}

/// The decomposable sites of `g`: assignment occurrences with non-trivial
/// right-hand sides and branch conditions with non-trivial sides.
pub fn decomposable_sites(g: &FlowGraph) -> Vec<Loc> {
    g.locs()
        .filter(|(_, instr)| match instr {
            Instr::Assign { rhs, .. } => rhs.is_nontrivial(),
            Instr::Branch(c) => c.lhs.is_nontrivial() || c.rhs.is_nontrivial(),
            _ => false,
        })
        .map(|(loc, _)| loc)
        .collect()
}

/// Initializes exactly the decomposable sites selected by `mask` — one
/// particular expression motion choice.
pub fn initialize_subset(g: &FlowGraph, mask: u32) -> FlowGraph {
    let mut out = g.clone();
    let sites = decomposable_sites(g);
    for n in g.nodes() {
        let mut fresh = Vec::new();
        for (idx, instr) in g.block(n).instrs.iter().enumerate() {
            let loc = Loc {
                node: n,
                index: idx,
            };
            let site = sites.iter().position(|&s| s == loc);
            let selected = site.map(|i| mask & (1 << i) != 0).unwrap_or(false);
            match instr {
                Instr::Assign { lhs, rhs } if selected => {
                    let h = out.temp_for(*rhs);
                    fresh.push(Instr::Assign { lhs: h, rhs: *rhs });
                    fresh.push(Instr::assign(*lhs, h));
                }
                Instr::Branch(c) if selected => {
                    let mut side = |t: Term, fresh: &mut Vec<Instr>| {
                        if t.is_nontrivial() {
                            let h = out.temp_for(t);
                            fresh.push(Instr::Assign { lhs: h, rhs: t });
                            Term::from(h)
                        } else {
                            t
                        }
                    };
                    let lhs = side(c.lhs, &mut fresh);
                    let rhs = side(c.rhs, &mut fresh);
                    fresh.push(Instr::Branch(Cond { op: c.op, lhs, rhs }));
                }
                other => fresh.push(other.clone()),
            }
        }
        out.block_mut(n).instrs = fresh;
    }
    out
}

/// A found witness: two programs of `G` with equal (minimal) expression
/// profiles but incomparable assignment profiles.
pub struct Witness {
    /// First variant and its profile.
    pub a: (FlowGraph, Vec<(u64, u64)>),
    /// Second variant and its profile.
    pub b: (FlowGraph, Vec<(u64, u64)>),
}

/// Enumerates every initialization subset of `original` (after edge
/// splitting), runs the motion fixpoint (and optionally the flush), keeps
/// the expression-minimal variants, and returns the first
/// assignment-incomparable pair, if any.
pub fn find_witness(original: &FlowGraph, oracles: usize) -> Option<Witness> {
    let mut base = original.clone();
    base.split_critical_edges();
    let sites = decomposable_sites(&base).len();
    if !(1..=8).contains(&sites) {
        return None;
    }
    let mut variants: Vec<(FlowGraph, Vec<(u64, u64)>)> = Vec::new();
    for mask in 0..(1u32 << sites) {
        let mut v = initialize_subset(&base, mask);
        assignment_motion(&mut v);
        for flushed in [false, true] {
            let mut w = v.clone();
            if flushed {
                final_flush(&mut w);
            }
            if let Some(p) = profile(&w, oracles) {
                variants.push((w, p));
            }
        }
    }
    if variants.len() < 2 {
        return None;
    }
    let min_evals: Vec<u64> = (0..oracles)
        .map(|i| variants.iter().map(|(_, p)| p[i].0).min().unwrap())
        .collect();
    let optimal: Vec<&(FlowGraph, Vec<(u64, u64)>)> = variants
        .iter()
        .filter(|(_, p)| (0..oracles).all(|i| p[i].0 == min_evals[i]))
        .collect();
    for (ai, a) in optimal.iter().enumerate() {
        for b in optimal.iter().skip(ai + 1) {
            let a_better = (0..oracles).any(|i| a.1[i].1 < b.1[i].1);
            let b_better = (0..oracles).any(|i| b.1[i].1 < a.1[i].1);
            if a_better && b_better {
                return Some(Witness {
                    a: (a.0.clone(), a.1.clone()),
                    b: (b.0.clone(), b.1.clone()),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::random::SplitMix64;
    use am_ir::random::{structured, StructuredConfig};

    /// The mechanically found Fig. 16/17 witness: two expression-optimal
    /// members of `G` that are incomparable in assignment executions —
    /// full assignment optimality is unattainable, exactly the theorem the
    /// paper's Fig. 16/17 demonstrates.
    #[test]
    fn incomparable_expression_optimal_pair_exists() {
        let mut rng = SplitMix64::new(10);
        let original = structured(
            &mut rng,
            &StructuredConfig {
                max_depth: 2,
                max_stmts: 3,
                num_vars: 4,
                allow_div: false,
            },
        );
        let witness = find_witness(&original, 8).expect("seed 10 yields a witness");
        // Equal expression profiles…
        for (pa, pb) in witness.a.1.iter().zip(&witness.b.1) {
            assert_eq!(pa.0, pb.0, "expression-optimal on every run");
        }
        // …incomparable assignment profiles.
        assert!(witness.a.1.iter().zip(&witness.b.1).any(|(a, b)| a.1 < b.1));
        assert!(witness.a.1.iter().zip(&witness.b.1).any(|(a, b)| b.1 < a.1));
        // Both semantically equal to the original.
        for g in [&witness.a.0, &witness.b.0] {
            for seed in 0..6 {
                let cfg = am_ir::interp::Config {
                    oracle: am_ir::interp::Oracle::random(seed, 10),
                    inputs: vec![("v0".into(), 2), ("v1".into(), -3), ("v2".into(), 5)],
                    ..Default::default()
                };
                assert_eq!(
                    am_ir::interp::run(&original, &cfg).observable(),
                    am_ir::interp::run(g, &cfg).observable()
                );
            }
        }
    }
}
