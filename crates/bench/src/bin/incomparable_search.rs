//! Searches random programs for Fig. 16/17-style witnesses — see
//! [`am_bench::witness`] for the machinery and the pinned example.
//!
//! ```sh
//! cargo run --release -p am-bench --bin incomparable_search -- 400
//! ```

use am_bench::witness::find_witness;
use am_ir::alpha::canonical_text;
use am_ir::random::SplitMix64;
use am_ir::random::{structured, StructuredConfig};
use am_ir::text::to_text;

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let mut found = 0;
    for seed in 0..count {
        let mut rng = SplitMix64::new(seed);
        let original = structured(
            &mut rng,
            &StructuredConfig {
                max_depth: 2,
                max_stmts: 3,
                num_vars: 4,
                allow_div: false,
            },
        );
        if let Some(w) = find_witness(&original, 8) {
            found += 1;
            println!("=== witness (source seed {seed}) ===");
            println!("--- original ---\n{}", to_text(&original));
            println!(
                "--- expression-optimal variant A ---\n{}",
                canonical_text(&w.a.0)
            );
            println!("profile A (evals, assigns): {:?}", w.a.1);
            println!(
                "--- expression-optimal variant B ---\n{}",
                canonical_text(&w.b.0)
            );
            println!("profile B (evals, assigns): {:?}", w.b.1);
            if found >= 2 {
                return;
            }
        }
    }
    println!("searched {count} programs, found {found} witnesses");
}
