//! Thm 5.2 verification harness: enumerates the universe fragment reachable
//! from each (initialized) figure program and checks that the global
//! algorithm's output is never beaten on any corresponding complete run.
//!
//! ```sh
//! cargo run --release -p am-bench --bin optimality
//! ```

use am_bench::programs;
use am_core::global::optimize;
use am_core::init::initialize;
use am_core::universe::{explore, UniverseConfig};
use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::text::parse;
use am_ir::FlowGraph;

fn evals(g: &FlowGraph, seed: u64, inputs: &[(String, i64)]) -> Option<u64> {
    let cfg = Config {
        oracle: Oracle::random(seed, 8),
        inputs: inputs.to_vec(),
        ..Config::default()
    };
    let r = run(g, &cfg);
    (r.stop == StopReason::ReachedEnd).then_some(r.expr_evals)
}

fn main() {
    let inputs: Vec<(String, i64)> = [
        ("a", 2),
        ("b", 3),
        ("c", 1),
        ("d", 2),
        ("p", 1),
        ("x", 3),
        ("y", 4),
        ("z", 5),
        ("i", 0),
        ("u", 1),
        ("v", 2),
        ("w", 1),
    ]
    .into_iter()
    .map(|(n, v)| (n.to_owned(), v))
    .collect();

    let sources = [
        ("fig01", programs::FIG1),
        ("fig02", programs::FIG2),
        ("fig08", programs::FIG8),
        ("fig10", programs::FIG10),
        ("fig16", programs::FIG16),
    ];
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>11} {:>8}",
        "figure", "programs", "terminal", "truncated", "runs", "beaten"
    );
    for (name, src) in sources {
        let source = parse(src).expect("figure parses");
        let optimized = optimize(&source).program;
        let mut initialized = source.clone();
        initialized.split_critical_edges();
        initialize(&mut initialized);
        let universe = explore(
            &initialized,
            &UniverseConfig {
                max_programs: 4000,
                max_depth: 16,
            },
        );
        let mut runs = 0usize;
        let mut beaten = 0usize;
        for candidate in &universe.programs {
            for seed in 0..8u64 {
                let (Some(cand), Some(opt)) = (
                    evals(candidate, seed, &inputs),
                    evals(&optimized, seed, &inputs),
                ) else {
                    continue;
                };
                runs += 1;
                if cand < opt {
                    beaten += 1;
                }
            }
        }
        println!(
            "{:<8} {:>9} {:>9} {:>10} {:>11} {:>8}",
            name,
            universe.programs.len(),
            universe.terminal.len(),
            universe.truncated,
            runs,
            beaten
        );
        assert_eq!(
            beaten, 0,
            "{name}: the output was beaten — Thm 5.2 violated"
        );
    }
    println!("\nThm 5.2 holds on every explored universe member.");
}
