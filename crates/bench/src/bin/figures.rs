//! Regenerates every figure of the paper: prints the input program, each
//! transformed variant, and dynamic cost measurements on corresponding runs.
//!
//! ```sh
//! cargo run -p am-bench --bin figures                  # all figures
//! cargo run -p am-bench --bin figures -- fig05         # one figure
//! cargo run -p am-bench --bin figures -- --dot fig05   # Graphviz output
//! ```

use am_bench::figures::all_reports;
use am_ir::text::parse;

fn main() {
    let mut dot = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--dot" {
            dot = true;
        } else {
            filter = Some(arg);
        }
    }
    for report in all_reports() {
        if let Some(f) = &filter {
            if !report.id.contains(f.as_str()) {
                continue;
            }
        }
        if dot {
            // Emit Graphviz for the input and each transformed variant
            // (parse back the canonical text — it round-trips).
            println!("// {} — {} (input)", report.id, report.title);
            println!(
                "{}",
                am_ir::dot::to_dot(&parse(&report.before).expect("round trip"))
            );
            for (label, text) in &report.after {
                println!("// {} — {label}", report.id);
                println!("{}", am_ir::dot::to_dot(&parse(text).expect("round trip")));
            }
            continue;
        }
        println!("================================================================");
        println!("{} — {}", report.id, report.title);
        println!("================================================================");
        println!("--- input ---\n{}", report.before);
        for (label, text) in &report.after {
            println!("--- {label} ---\n{text}");
        }
        if !report.measurements.is_empty() {
            println!("--- dynamic cost over corresponding runs ---");
            println!(
                "{:<24} {:>10} {:>12} {:>12} {:>6}",
                "variant", "expr evals", "assignments", "temp assigns", "runs"
            );
            for m in &report.measurements {
                println!(
                    "{:<24} {:>10} {:>12} {:>12} {:>6}",
                    m.label, m.expr_evals, m.assign_execs, m.temp_assigns, m.runs
                );
            }
        }
        for note in &report.notes {
            println!("note: {note}");
        }
        println!();
    }
}
