//! The Sec. 4.5 complexity study: sweeps structured and unstructured
//! program families over size and reports wall time, motion rounds and
//! solver iterations, plus the fitted scaling exponent.
//!
//! ```sh
//! cargo run --release -p am-bench --bin complexity
//! ```

use am_bench::workloads::{fit_exponent, structured_sweep, unstructured_sweep, ComplexityRow};

fn print_table(title: &str, rows: &[ComplexityRow]) {
    println!("== {title} ==");
    println!(
        "{:<20} {:>6} {:>7} {:>10} {:>7} {:>10} {:>6}",
        "workload", "nodes", "instrs", "time(us)", "rounds", "dfa iters", "conv"
    );
    for r in rows {
        println!(
            "{:<20} {:>6} {:>7} {:>10} {:>7} {:>10} {:>6}",
            r.label, r.nodes, r.instrs, r.micros, r.motion_rounds, r.solver_iterations, r.converged
        );
    }
    // Fit each workload family separately: mixing families with different
    // constant factors makes a single exponent meaningless.
    let mut families: Vec<&str> = rows
        .iter()
        .map(|r| r.label.split_whitespace().next().unwrap_or(""))
        .collect();
    families.dedup();
    for family in families {
        let subset: Vec<ComplexityRow> = rows
            .iter()
            .filter(|r| r.label.starts_with(family))
            .cloned()
            .collect();
        if subset.len() >= 2 {
            println!(
                "  {family}: fitted time ~ instrs^{:.2}",
                fit_exponent(&subset)
            );
        }
    }
    println!();
}

fn main() {
    let structured = structured_sweep();
    print_table(
        "structured programs (paper: essentially quadratic)",
        &structured,
    );
    let unstructured = unstructured_sweep();
    print_table(
        "unstructured programs (paper: up to fourth order)",
        &unstructured,
    );
}
