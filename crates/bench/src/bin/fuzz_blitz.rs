//! Extended randomized soundness sweep: thousands of random programs
//! through the full pipeline and baselines, checking observables and
//! expression optimality on corresponding runs. Not part of the test
//! suite (slow); run before releases:
//!
//! ```sh
//! cargo run --release -p am-bench --bin fuzz_blitz -- 2000
//! ```

use am_core::global::optimize;
use am_core::lcm::lazy_expression_motion;
use am_core::sink::{sink_assignments, SinkConfig};
use am_core::verify::weakly_equivalent;
use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::random::SplitMix64;
use am_ir::random::{structured, unstructured, StructuredConfig, UnstructuredConfig};

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let mut checked = 0u64;
    let mut runs = 0u64;
    for seed in 0..count {
        let mut rng = SplitMix64::new(seed);
        let program = match seed % 3 {
            0 => structured(&mut rng, &StructuredConfig::default()),
            1 => structured(
                &mut rng,
                &StructuredConfig {
                    allow_div: true,
                    max_depth: 4,
                    ..Default::default()
                },
            ),
            _ => unstructured(
                &mut rng,
                &UnstructuredConfig {
                    nodes: 8 + (seed as usize % 12),
                    extra_edges: 4 + (seed as usize % 8),
                    max_instrs: 4,
                    num_vars: 6,
                    allow_div: seed % 6 == 5,
                },
            ),
        };
        let result = optimize(&program);
        assert!(result.motion.converged, "seed {seed} did not converge");
        assert_eq!(result.program.validate(), Ok(()), "seed {seed}");

        let mut em = program.clone();
        em.split_critical_edges();
        lazy_expression_motion(&mut em);

        let mut sunk = program.clone();
        sunk.split_critical_edges();
        sink_assignments(
            &mut sunk,
            &SinkConfig {
                eliminate_nontrivial_dead: false, // keep trap potential
            },
        );

        for run_seed in 0..10u64 {
            let cfg = Config {
                oracle: Oracle::random(seed.wrapping_mul(1_000_003) + run_seed, 14),
                inputs: vec![
                    ("v0".into(), (seed as i64 % 7) - 3),
                    ("v1".into(), 2),
                    ("v2".into(), -5),
                    ("v3".into(), 1),
                ],
                ..Config::default()
            };
            let base = run(&program, &cfg);
            for (label, g) in [("full", &result.program), ("em", &em), ("sink", &sunk)] {
                let r = run(g, &cfg);
                assert!(
                    weakly_equivalent(&base, &r),
                    "seed {seed}/{run_seed} {label}: {:?} vs {:?}\n{program:?}\n{g:?}",
                    base.observable(),
                    r.observable()
                );
                assert_eq!(
                    base.trap.is_some(),
                    r.trap.is_some(),
                    "seed {seed}/{run_seed} {label}: trap potential changed"
                );
                if base.stop == StopReason::ReachedEnd
                    && r.stop == StopReason::ReachedEnd
                    && label == "full"
                {
                    assert!(
                        r.expr_evals <= base.expr_evals,
                        "seed {seed}/{run_seed}: optimality violated"
                    );
                }
                runs += 1;
            }
        }
        checked += 1;
        if checked.is_multiple_of(250) {
            eprintln!("... {checked}/{count} programs");
        }
    }
    println!("fuzz blitz: {checked} programs, {runs} corresponding runs, all equivalent");
}
