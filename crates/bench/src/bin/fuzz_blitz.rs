//! Extended randomized soundness sweep — now a thin wrapper around the
//! `am-check` campaign runner, so every seed gets the full per-phase
//! differential validation (split, init, each motion round, flush, the
//! end-to-end comparison and the LCM/sink baselines) instead of the old
//! end-to-end-only checks. Failures are shrunk and written as reproduction
//! bundles under `target/am-check/`, and the process exits nonzero on any
//! semantic mismatch or optimality regression.
//!
//! Not part of the test suite (slow); run before releases:
//!
//! ```sh
//! cargo run --release -p am-bench --bin fuzz_blitz -- 2000
//! cargo run --release -p am-bench --bin fuzz_blitz -- 500 --seed-start 2000 --fail-fast
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use am_check::campaign::{default_bundle_dir, run_campaign, CampaignConfig};
use am_trace::Tracer;

const USAGE: &str = "usage: fuzz_blitz [COUNT] [--seed-start N] [--fail-fast]";

fn main() -> ExitCode {
    let mut count: u64 = 500;
    let mut seed_start: u64 = 0;
    let mut fail_fast = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed-start" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed_start = n,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fail-fast" => fail_fast = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => match other.parse() {
                Ok(n) => count = n,
                Err(_) => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
        }
    }

    let (tracer, collector) = Tracer::collector();
    let cfg = CampaignConfig {
        seed_start,
        seed_end: seed_start + count,
        runs: 10,
        decisions: 14,
        fail_fast,
        fault: None,
        bundle_dir: Some(default_bundle_dir(&PathBuf::from("."))),
        tracer,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg, &mut |seed, fails| {
        let done = seed + 1 - seed_start;
        if done.is_multiple_of(250) {
            eprintln!("... {done}/{count} programs, {fails} failures");
        }
    });

    for f in &report.failures {
        let bundle = f
            .bundle
            .as_ref()
            .map(|p| format!(" -> {}", p.display()))
            .unwrap_or_default();
        eprintln!(
            "seed {}: FAILED at {} ({:?}){bundle}",
            f.seed, f.failure.stage, f.failure.kind
        );
    }
    println!(
        "fuzz blitz: {} programs, {} stage pairs checked, {} failures",
        report.seeds_checked,
        report.stages_checked,
        report.failures.len()
    );
    println!("{}", am_trace::export::summary_line(&collector.take()));
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
