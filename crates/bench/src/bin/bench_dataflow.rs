//! The dataflow-engine scaling benchmark: runs the complexity-study
//! workload ladder end-to-end through `optimize` and writes an
//! `am-bench-dataflow/v1` JSON document (wall times + solver counters per
//! workload) for trajectory tracking across PRs.
//!
//! ```sh
//! cargo run --release -p am-bench --bin bench_dataflow
//! cargo run --release -p am-bench --bin bench_dataflow -- \
//!     --small --out target/BENCH_dataflow.json --max-pushes-per-point 64
//! cargo run --release -p am-bench --bin bench_dataflow -- --xl --workers 8
//! ```
//!
//! `--max-pushes-per-point` turns the run into a CI gate: the run fails if
//! any workload's `worklist_pushes / points` exceeds the ceiling (which
//! catches accidental loss of worklist dedup or priority ordering).
//! `--max-wall-micros` is the XL smoke gate: the run fails if any
//! workload's best wall time exceeds the ceiling.
//!
//! The XL ladder (`--xl`) extends the study to 10k–100k-point graphs in
//! three families (sequential loop-nest grids, very wide fans, inlined
//! program shapes) and prints the fitted nodes-vs-wall exponent per
//! family, turning the paper's Sec. 4.5 complexity claim into a measured
//! curve. `--xl-smoke` runs just the mid-size nest rung for CI.

use std::process::ExitCode;
use std::time::Instant;

use am_bench::workloads::{
    diamond_chain, fit_nodes_exponent, inlined_program, loop_nest, nest_grid, wide_fan,
    ComplexityRow,
};
use am_core::global::{optimize_with, GlobalConfig};
use am_dfa::PointGraph;
use am_ir::random::{unstructured, SplitMix64, UnstructuredConfig};
use am_ir::FlowGraph;
use am_pipeline::bench_json::{render, BenchRecord};

struct Options {
    out: String,
    iters: u32,
    small: bool,
    xl: bool,
    xl_smoke: bool,
    workers: usize,
    max_pushes_per_point: Option<f64>,
    max_wall_micros: Option<u128>,
    history: Option<String>,
}

const USAGE: &str = "usage: bench_dataflow [options]

Runs the scaling workload ladder through the full optimizer and writes
machine-readable benchmark records (am-bench-dataflow/v1 JSON).

options:
  --out PATH                output file (default BENCH_dataflow.json)
  --iters N                 timed iterations per workload, best-of (default 5)
  --small                   CI ladder: smallest two sizes per family
  --xl                      also run the XL ladder (10k-100k point graphs)
  --xl-smoke                also run one mid-size XL rung (CI smoke)
  --workers N               threads for cold fixpoint solves (default 1)
  --max-pushes-per-point X  fail (exit 1) if any workload exceeds this
                            worklist_pushes / points ratio
  --max-wall-micros X       fail (exit 1) if any workload's best wall time
                            exceeds X microseconds
  --history PATH            also append the run to an append-only history
                            (default BENCH_history.jsonl; see amstat regress)
  --no-history              skip the history append
  --help                    this text";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_dataflow.json".to_owned(),
        iters: 5,
        small: false,
        xl: false,
        xl_smoke: false,
        workers: 1,
        max_pushes_per_point: None,
        max_wall_micros: None,
        history: Some("BENCH_history.jsonl".to_owned()),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => opts.out = value(&mut args, "--out")?,
            "--iters" => {
                opts.iters = value(&mut args, "--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
                if opts.iters == 0 {
                    return Err("--iters must be at least 1".to_owned());
                }
            }
            "--small" => opts.small = true,
            "--xl" => opts.xl = true,
            "--xl-smoke" => opts.xl_smoke = true,
            "--workers" => {
                opts.workers = value(&mut args, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
            }
            "--max-pushes-per-point" => {
                opts.max_pushes_per_point = Some(
                    value(&mut args, "--max-pushes-per-point")?
                        .parse()
                        .map_err(|e| format!("--max-pushes-per-point: {e}"))?,
                );
            }
            "--max-wall-micros" => {
                opts.max_wall_micros = Some(
                    value(&mut args, "--max-wall-micros")?
                        .parse()
                        .map_err(|e| format!("--max-wall-micros: {e}"))?,
                );
            }
            "--history" => opts.history = Some(value(&mut args, "--history")?),
            "--no-history" => opts.history = None,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument '{other}'; --help for usage")),
        }
    }
    Ok(opts)
}

/// The workload ladder: three families swept over size. `small` keeps the
/// two smallest rungs per family for the CI smoke job.
fn ladder(small: bool) -> Vec<(String, FlowGraph)> {
    let take = if small { 2 } else { 4 };
    let mut workloads = Vec::new();
    for depth in [1usize, 2, 4, 6].into_iter().take(take) {
        workloads.push((format!("nest d={depth} w=4"), loop_nest(depth, 4)));
    }
    for sections in [4usize, 8, 16, 32].into_iter().take(take) {
        workloads.push((
            format!("diamonds s={sections} w=4"),
            diamond_chain(sections, 4),
        ));
    }
    for nodes in [8usize, 16, 32, 64].into_iter().take(take) {
        let mut rng = SplitMix64::new(nodes as u64);
        let g = unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes,
                extra_edges: nodes / 2,
                max_instrs: 4,
                num_vars: 6,
                allow_div: false,
            },
        );
        workloads.push((format!("random n={nodes}"), g));
    }
    workloads
}

/// The XL ladder: 3.5k / 10k / 30k-node rungs per family. `smoke` keeps
/// one mid-size rung (the checked-in CI gate rung).
fn xl_ladder(smoke: bool) -> Vec<(String, FlowGraph)> {
    if smoke {
        return vec![("xl nest c=2000".to_owned(), nest_grid(2000, 2, 8))];
    }
    let mut workloads = Vec::new();
    for copies in [700usize, 2000, 6000] {
        workloads.push((format!("xl nest c={copies}"), nest_grid(copies, 2, 8)));
    }
    for branches in [3500usize, 10000, 30000] {
        workloads.push((format!("xl fan b={branches}"), wide_fan(branches, 4)));
    }
    for calls in [1200usize, 3300, 10000] {
        workloads.push((format!("xl inline c={calls}"), inlined_program(calls, 48)));
    }
    workloads
}

/// Runs one workload `iters` times, keeping the fastest end-to-end run
/// (and its per-phase timings; the counters are deterministic).
fn measure(label: &str, g: &FlowGraph, iters: u32, workers: usize) -> BenchRecord {
    let config = GlobalConfig {
        keep_snapshots: false,
        solver_workers: workers,
        ..Default::default()
    };
    // Warmup, then best-of-N: minimum wall time is the least noisy
    // estimator on a shared machine.
    let _ = optimize_with(g, &config);
    let mut best_wall = u128::MAX;
    let mut best = None;
    for _ in 0..iters {
        let start = Instant::now();
        let result = optimize_with(g, &config);
        let wall = start.elapsed().as_micros();
        if wall < best_wall {
            best_wall = wall;
            best = Some(result);
        }
    }
    let result = best.expect("at least one timed iteration");
    let points = PointGraph::build(g).len();
    BenchRecord {
        label: label.to_owned(),
        nodes: g.node_count(),
        instrs: g.instr_count(),
        points,
        wall_micros: best_wall,
        split_micros: result.timings.split.as_micros(),
        init_micros: result.timings.init.as_micros(),
        motion_micros: result.timings.motion.as_micros(),
        flush_micros: result.timings.flush.as_micros(),
        rounds: result.motion.rounds,
        converged: result.motion.converged,
        iterations: result.motion.iterations + result.flush.iterations,
        worklist_pushes: result.motion.worklist_pushes + result.flush.worklist_pushes,
        max_worklist_len: result.flush.max_worklist_len,
        eliminated: result.motion.eliminated,
        inserted: result.motion.inserted,
        removed: result.motion.removed,
        cache_hit: false,
    }
}

/// Writes the report via a temporary file and an atomic rename, so a
/// crashed or interrupted run can never leave a truncated JSON document
/// where a previous good report used to be (multi-MB XL reports made
/// that failure mode real).
fn write_atomic(path: &str, doc: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, doc)?;
    std::fs::rename(&tmp, path)
}

/// Fitted nodes-vs-wall exponent of the records in `family` (by label
/// prefix); NaN with fewer than two usable points.
fn family_exponent(records: &[BenchRecord], family: &str) -> f64 {
    let rows: Vec<ComplexityRow> = records
        .iter()
        .filter(|r| r.label.starts_with(family))
        .map(|r| ComplexityRow {
            label: r.label.clone(),
            nodes: r.nodes,
            instrs: r.instrs,
            micros: r.wall_micros,
            motion_rounds: r.rounds,
            solver_iterations: r.iterations,
            converged: r.converged,
        })
        .collect();
    fit_nodes_exponent(&rows)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut workloads = ladder(opts.small);
    if opts.xl || opts.xl_smoke {
        workloads.extend(xl_ladder(!opts.xl));
    }
    let mut records = Vec::new();
    println!(
        "{:<18} {:>6} {:>7} {:>7} {:>10} {:>7} {:>9} {:>9} {:>8}",
        "workload", "nodes", "instrs", "points", "wall(us)", "rounds", "iters", "pushes", "push/pt"
    );
    for (label, g) in workloads {
        // XL rungs run fewer timed iterations: a 30k-node rung at
        // best-of-5 would dominate the whole run for little extra
        // precision.
        let iters = if label.starts_with("xl ") {
            opts.iters.min(3)
        } else {
            opts.iters
        };
        let rec = measure(&label, &g, iters, opts.workers);
        println!(
            "{:<18} {:>6} {:>7} {:>7} {:>10} {:>7} {:>9} {:>9} {:>8.1}",
            rec.label,
            rec.nodes,
            rec.instrs,
            rec.points,
            rec.wall_micros,
            rec.rounds,
            rec.iterations,
            rec.worklist_pushes,
            rec.pushes_per_point()
        );
        records.push(rec);
    }
    if opts.xl {
        for family in ["xl nest", "xl fan", "xl inline"] {
            let e = family_exponent(&records, family);
            if e.is_finite() {
                println!("fit: {family:<10} wall ~ nodes^{e:.2}");
            }
        }
    }
    let doc = render("bench_dataflow", &records);
    if let Err(e) = write_atomic(&opts.out, &doc) {
        eprintln!("{}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {} records to {}", records.len(), opts.out);
    if let Some(history) = &opts.history {
        match am_obs::regress::append_history(std::path::Path::new(history), &doc) {
            Ok(()) => println!("appended this run to {history}"),
            Err(e) => {
                eprintln!("bench_dataflow: history: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut over = false;
    if let Some(ceiling) = opts.max_pushes_per_point {
        for rec in &records {
            if rec.pushes_per_point() > ceiling {
                eprintln!(
                    "GATE: {} pushed {:.1} times per point (ceiling {ceiling})",
                    rec.label,
                    rec.pushes_per_point()
                );
                over = true;
            }
        }
        if !over {
            println!("gate ok: every workload under {ceiling} pushes/point");
        }
    }
    if let Some(ceiling) = opts.max_wall_micros {
        let mut wall_over = false;
        for rec in &records {
            if rec.wall_micros > ceiling {
                eprintln!(
                    "GATE: {} took {}us (ceiling {ceiling}us)",
                    rec.label, rec.wall_micros
                );
                wall_over = true;
            }
        }
        if !wall_over {
            println!("gate ok: every workload under {ceiling}us wall");
        }
        over |= wall_over;
    }
    if over {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
