//! Cross-technique comparison on every workload: the evaluation summary
//! table. For each workload and technique, total expression evaluations,
//! assignment executions and temporary assignments over a shared batch of
//! corresponding runs, plus the per-axis dominance of the full algorithm.
//!
//! ```sh
//! cargo run --release -p am-bench --bin showdown
//! ```

use am_bench::{programs, workloads};
use am_core::global::optimize;
use am_core::lcm::lazy_expression_motion;
use am_core::motion::assignment_motion;
use am_core::restricted::restricted_assignment_motion;
use am_core::sink::{partial_dead_code_elimination, SinkConfig};
use am_core::{copyprop, preorder, verify};
use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::text::{parse, parse_with_mode, Mode};
use am_ir::FlowGraph;

type Workload = (&'static str, FlowGraph, Vec<(String, i64)>);

struct Variant {
    label: &'static str,
    program: FlowGraph,
}

fn variants(original: &FlowGraph) -> Vec<Variant> {
    let split = || {
        let mut g = original.clone();
        g.split_critical_edges();
        g
    };
    let mut em = split();
    lazy_expression_motion(&mut em);
    let mut am = split();
    assignment_motion(&mut am);
    let mut restricted = split();
    restricted_assignment_motion(&mut restricted);
    let mut emcp = split();
    for _ in 0..4 {
        let before = emcp.clone();
        lazy_expression_motion(&mut emcp);
        copyprop::copy_propagation(&mut emcp, true);
        if emcp == before {
            break;
        }
    }
    let mut pde = split();
    partial_dead_code_elimination(
        &mut pde,
        &SinkConfig {
            eliminate_nontrivial_dead: false,
        },
    );
    vec![
        Variant {
            label: "original",
            program: original.clone(),
        },
        Variant {
            label: "EM (LCM)",
            program: em,
        },
        Variant {
            label: "AM only",
            program: am,
        },
        Variant {
            label: "restricted AM",
            program: restricted,
        },
        Variant {
            label: "EM + CP",
            program: emcp,
        },
        Variant {
            label: "PDE (sink)",
            program: pde,
        },
        Variant {
            label: "uniform EM & AM",
            program: optimize(original).program,
        },
    ]
}

fn totals(g: &FlowGraph, inputs: &[(String, i64)]) -> (u64, u64, u64, usize) {
    let (mut evals, mut assigns, mut temps, mut completed) = (0, 0, 0, 0);
    for seed in 0..24u64 {
        let cfg = Config {
            oracle: Oracle::random(seed * 101 + 7, 12),
            inputs: inputs.to_vec(),
            ..Config::default()
        };
        let r = run(g, &cfg);
        if r.stop == StopReason::ReachedEnd {
            completed += 1;
            evals += r.expr_evals;
            assigns += r.assign_execs;
            temps += r.temp_assign_execs;
        }
    }
    (evals, assigns, temps, completed)
}

fn main() {
    let workload_set: Vec<Workload> = vec![
        (
            "running example (Fig. 4)",
            parse(programs::FIG4).unwrap(),
            programs::fig4_inputs(),
        ),
        (
            "Fig. 8 diamond",
            parse(programs::FIG8).unwrap(),
            vec![("y".into(), 3), ("z".into(), 4), ("p".into(), 1)],
        ),
        (
            "3-address loop (Fig. 18)",
            parse_with_mode(programs::FIG18, Mode::Decompose).unwrap(),
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)],
        ),
        (
            "loop nest d=3 w=4",
            workloads::loop_nest(3, 4),
            vec![("n".into(), 3), ("a".into(), 7)],
        ),
        (
            "while-language b=2 c=3",
            workloads::while_workload(2, 3),
            vec![("n".into(), 4), ("base".into(), 10)],
        ),
    ];

    for (name, original, inputs) in workload_set {
        println!("== {name} ==");
        println!(
            "{:<18} {:>10} {:>12} {:>12} {:>6}",
            "technique", "expr evals", "assignments", "temp assigns", "runs"
        );
        let vs = variants(&original);
        for v in &vs {
            let (e, a, t, c) = totals(&v.program, &inputs);
            println!("{:<18} {:>10} {:>12} {:>12} {:>6}", v.label, e, a, t, c);
            // Semantic safety net while we are here.
            let report = verify::compare(
                &original,
                &v.program,
                &verify::CompareConfig {
                    inputs: inputs.clone(),
                    ..Default::default()
                },
            );
            assert!(report.semantically_equal(), "{name}/{}", v.label);
        }
        // Dominance of the full algorithm over each baseline (Thm 5.2).
        // Within the universe (EM/AM variants) the per-pattern preorder
        // applies; copy propagation and PDE rewrite *which* patterns exist
        // (x+z may become h+z), so they are compared on aggregate
        // evaluation counts per run instead.
        let full = &vs.last().unwrap().program;
        for v in &vs[..vs.len() - 1] {
            let cfg = verify::CompareConfig {
                inputs: inputs.clone(),
                ..Default::default()
            };
            let in_universe = !matches!(v.label, "EM + CP" | "PDE (sink)");
            if in_universe {
                let report = preorder::evaluate(full, &v.program, &cfg);
                assert!(
                    report.expr.left_dominates(),
                    "{name}: full algorithm beaten by {} per-pattern",
                    v.label
                );
            }
            let report = verify::compare(&v.program, full, &cfg);
            assert!(
                report.expression_dominates(),
                "{name}: full algorithm beaten by {} in aggregate",
                v.label
            );
        }
        println!("expression dominance of the uniform algorithm: verified\n");
    }
}
