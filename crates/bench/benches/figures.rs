//! One Criterion benchmark group per reproduced figure: the cost of the
//! transformation that regenerates it.

use am_bench::programs;
use am_core::global::optimize;
use am_core::lcm::lazy_expression_motion;
use am_core::motion::assignment_motion;
use am_core::restricted::restricted_assignment_motion;
use am_ir::text::{parse, parse_with_mode, Mode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");

    let fig1 = parse(programs::FIG1).unwrap();
    group.bench_function("fig01_em", |b| {
        b.iter(|| {
            let mut g = fig1.clone();
            g.split_critical_edges();
            lazy_expression_motion(&mut g);
            black_box(g)
        })
    });

    let fig2 = parse(programs::FIG2).unwrap();
    group.bench_function("fig02_am", |b| {
        b.iter(|| {
            let mut g = fig2.clone();
            g.split_critical_edges();
            assignment_motion(&mut g);
            black_box(g)
        })
    });

    let fig4 = parse(programs::FIG4).unwrap();
    group.bench_function("fig05_global", |b| {
        b.iter(|| black_box(optimize(&fig4)))
    });
    group.bench_function("fig06a_em_only", |b| {
        b.iter(|| {
            let mut g = fig4.clone();
            g.split_critical_edges();
            lazy_expression_motion(&mut g);
            black_box(g)
        })
    });
    group.bench_function("fig06b_am_only", |b| {
        b.iter(|| {
            let mut g = fig4.clone();
            g.split_critical_edges();
            assignment_motion(&mut g);
            black_box(g)
        })
    });

    let fig7 = parse(programs::FIG7).unwrap();
    group.bench_function("fig07_loops", |b| {
        b.iter(|| {
            let mut g = fig7.clone();
            g.split_critical_edges();
            assignment_motion(&mut g);
            black_box(g)
        })
    });

    let fig8 = parse(programs::FIG8).unwrap();
    group.bench_function("fig08_restricted", |b| {
        b.iter(|| {
            let mut g = fig8.clone();
            g.split_critical_edges();
            restricted_assignment_motion(&mut g);
            black_box(g)
        })
    });
    group.bench_function("fig09_unrestricted", |b| {
        b.iter(|| {
            let mut g = fig8.clone();
            g.split_critical_edges();
            assignment_motion(&mut g);
            black_box(g)
        })
    });

    let fig10 = parse(programs::FIG10).unwrap();
    group.bench_function("fig10_critical_edges", |b| {
        b.iter(|| {
            let mut g = fig10.clone();
            black_box(g.split_critical_edges())
        })
    });

    let fig18 = parse_with_mode(programs::FIG18, Mode::Decompose).unwrap();
    group.bench_function("fig20_three_address", |b| {
        b.iter(|| black_box(optimize(&fig18)))
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
