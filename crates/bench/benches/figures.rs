//! One benchmark per reproduced figure: the cost of the transformation
//! that regenerates it. Plain wall-clock harness (`am_bench::timer`);
//! `BENCH_ITERS` overrides the iteration count.

use am_bench::programs;
use am_bench::timer::{bench, iters_from_env};
use am_core::global::optimize;
use am_core::lcm::lazy_expression_motion;
use am_core::motion::assignment_motion;
use am_core::restricted::restricted_assignment_motion;
use am_ir::text::{parse, parse_with_mode, Mode};
use std::hint::black_box;

fn main() {
    let iters = iters_from_env(200);
    println!("== figures ==");

    let fig1 = parse(programs::FIG1).unwrap();
    bench("fig01_em", iters, || {
        let mut g = fig1.clone();
        g.split_critical_edges();
        lazy_expression_motion(&mut g);
        black_box(g);
    });

    let fig2 = parse(programs::FIG2).unwrap();
    bench("fig02_am", iters, || {
        let mut g = fig2.clone();
        g.split_critical_edges();
        assignment_motion(&mut g);
        black_box(g);
    });

    let fig4 = parse(programs::FIG4).unwrap();
    bench("fig05_global", iters, || {
        black_box(optimize(&fig4));
    });
    bench("fig06a_em_only", iters, || {
        let mut g = fig4.clone();
        g.split_critical_edges();
        lazy_expression_motion(&mut g);
        black_box(g);
    });
    bench("fig06b_am_only", iters, || {
        let mut g = fig4.clone();
        g.split_critical_edges();
        assignment_motion(&mut g);
        black_box(g);
    });

    let fig7 = parse(programs::FIG7).unwrap();
    bench("fig07_loops", iters, || {
        let mut g = fig7.clone();
        g.split_critical_edges();
        assignment_motion(&mut g);
        black_box(g);
    });

    let fig8 = parse(programs::FIG8).unwrap();
    bench("fig08_restricted", iters, || {
        let mut g = fig8.clone();
        g.split_critical_edges();
        restricted_assignment_motion(&mut g);
        black_box(g);
    });
    bench("fig09_unrestricted", iters, || {
        let mut g = fig8.clone();
        g.split_critical_edges();
        assignment_motion(&mut g);
        black_box(g);
    });

    let fig10 = parse(programs::FIG10).unwrap();
    bench("fig10_critical_edges", iters, || {
        let mut g = fig10.clone();
        black_box(g.split_critical_edges());
    });

    let fig18 = parse_with_mode(programs::FIG18, Mode::Decompose).unwrap();
    bench("fig20_three_address", iters, || {
        black_box(optimize(&fig18));
    });
}
