//! The Sec. 4.5 scaling study as Criterion benchmarks: full-pipeline cost
//! over growing structured (loop nests, diamond chains) and unstructured
//! (random graph) programs.

use am_bench::workloads::{diamond_chain, loop_nest};
use am_core::global::{optimize_with, GlobalConfig};
use am_ir::random::{unstructured, UnstructuredConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn config() -> GlobalConfig {
    GlobalConfig {
        keep_snapshots: false,
        ..Default::default()
    }
}

fn bench_scaling(c: &mut Criterion) {
    let cfg = config();

    let mut nests = c.benchmark_group("scaling_loop_nests");
    for depth in [1usize, 2, 4, 6] {
        let g = loop_nest(depth, 4);
        nests.throughput(Throughput::Elements(g.instr_count() as u64));
        nests.bench_with_input(BenchmarkId::from_parameter(depth), &g, |b, g| {
            b.iter(|| black_box(optimize_with(g, &cfg)))
        });
    }
    nests.finish();

    let mut diamonds = c.benchmark_group("scaling_diamond_chains");
    for sections in [4usize, 8, 16, 32] {
        let g = diamond_chain(sections, 4);
        diamonds.throughput(Throughput::Elements(g.instr_count() as u64));
        diamonds.bench_with_input(BenchmarkId::from_parameter(sections), &g, |b, g| {
            b.iter(|| black_box(optimize_with(g, &cfg)))
        });
    }
    diamonds.finish();

    let mut random = c.benchmark_group("scaling_unstructured");
    for nodes in [8usize, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(nodes as u64);
        let g = unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes,
                extra_edges: nodes / 2,
                max_instrs: 4,
                num_vars: 6,
                allow_div: false,
            },
        );
        random.throughput(Throughput::Elements(g.instr_count() as u64));
        random.bench_with_input(BenchmarkId::from_parameter(nodes), &g, |b, g| {
            b.iter(|| black_box(optimize_with(g, &cfg)))
        });
    }
    random.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
