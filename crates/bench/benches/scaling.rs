//! The Sec. 4.5 scaling study as wall-clock benchmarks: full-pipeline cost
//! over growing structured (loop nests, diamond chains) and unstructured
//! (random graph) programs.

use am_bench::timer::{bench, iters_from_env};
use am_bench::workloads::{diamond_chain, loop_nest};
use am_core::global::{optimize_with, GlobalConfig};
use am_ir::random::{unstructured, SplitMix64, UnstructuredConfig};
use std::hint::black_box;

fn config() -> GlobalConfig {
    GlobalConfig {
        keep_snapshots: false,
        ..Default::default()
    }
}

fn main() {
    let iters = iters_from_env(50);
    let cfg = config();

    println!("== scaling_loop_nests ==");
    for depth in [1usize, 2, 4, 6] {
        let g = loop_nest(depth, 4);
        bench(
            &format!("depth={depth} ({} instrs)", g.instr_count()),
            iters,
            || {
                black_box(optimize_with(&g, &cfg));
            },
        );
    }

    println!("== scaling_diamond_chains ==");
    for sections in [4usize, 8, 16, 32] {
        let g = diamond_chain(sections, 4);
        bench(
            &format!("sections={sections} ({} instrs)", g.instr_count()),
            iters,
            || {
                black_box(optimize_with(&g, &cfg));
            },
        );
    }

    println!("== scaling_unstructured ==");
    for nodes in [8usize, 16, 32, 64] {
        let mut rng = SplitMix64::new(nodes as u64);
        let g = unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes,
                extra_edges: nodes / 2,
                max_instrs: 4,
                num_vars: 6,
                allow_div: false,
            },
        );
        bench(
            &format!("nodes={nodes} ({} instrs)", g.instr_count()),
            iters,
            || {
                black_box(optimize_with(&g, &cfg));
            },
        );
    }
}
