//! Batch-pipeline throughput: jobs/second over worker counts, with and
//! without cache-friendly duplication in the corpus.

use am_bench::timer::{bench, iters_from_env};
use am_bench::workloads::{pipeline_corpus, pipeline_throughput};
use am_pipeline::{Pipeline, PipelineConfig};
use std::hint::black_box;

fn main() {
    let iters = iters_from_env(20);

    println!("== pipeline_throughput (48 unique x 4 copies) ==");
    for row in pipeline_throughput(48, 4, &[1, 2, 4, 8]) {
        println!(
            "workers={:<2} jobs={} hits={} wall={} us  ({:.0} jobs/s)",
            row.workers, row.jobs, row.cache_hits, row.micros, row.jobs_per_sec
        );
    }

    println!("== pipeline_batch (all-unique corpus, repeated batches) ==");
    let jobs = pipeline_corpus(32, 1);
    for workers in [1usize, 4] {
        // A fresh pipeline per timed closure so each measurement starts
        // with a cold cache.
        bench(&format!("cold cache, workers={workers}"), iters, || {
            let p = Pipeline::new(PipelineConfig {
                workers: Some(workers),
                ..Default::default()
            });
            black_box(p.run(&jobs));
        });
        let warm = Pipeline::new(PipelineConfig {
            workers: Some(workers),
            ..Default::default()
        });
        warm.run(&jobs);
        bench(&format!("warm cache, workers={workers}"), iters, || {
            black_box(warm.run(&jobs));
        });
    }

    // One traced batch so perf-relevant counters land in the bench log.
    let (tracer, collector) = am_trace::Tracer::collector();
    let traced = Pipeline::new(PipelineConfig {
        workers: Some(4),
        tracer,
        ..Default::default()
    });
    black_box(traced.run(&jobs));
    println!("{}", am_trace::export::summary_line(&collector.take()));
}
