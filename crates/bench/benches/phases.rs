//! Per-phase cost breakdown on a representative structured workload,
//! including the Tables 1–3 analyses in isolation — the ablation the
//! DESIGN.md inventory calls out. Plain wall-clock harness.

use am_bench::timer::{bench, iters_from_env};
use am_bench::workloads::loop_nest;
use am_core::{flush, hoist, init, motion, rae};
use am_dfa::{solve, solve_parallel, Confluence, Direction, PointGraph, Problem};
use am_ir::PatternUniverse;
use std::hint::black_box;

fn main() {
    let iters = iters_from_env(100);
    println!("== phases ==");
    let base = loop_nest(3, 4);
    let mut prepared = base.clone();
    prepared.split_critical_edges();
    init::initialize(&mut prepared);

    bench("initialization", iters, || {
        let mut g = base.clone();
        g.split_critical_edges();
        black_box(init::initialize(&mut g));
    });
    bench("analysis_rae_table2", iters, || {
        black_box(rae::redundant_locs(&prepared));
    });
    bench("analysis_hoist_table1", iters, || {
        black_box(hoist::analyze_hoisting(&prepared));
    });
    bench("motion_fixpoint", iters, || {
        let mut g = prepared.clone();
        black_box(motion::assignment_motion(&mut g));
    });
    // Flush on the stabilized program (Table 3).
    let mut stabilized = prepared.clone();
    motion::assignment_motion(&mut stabilized);
    bench("analysis_flush_table3", iters, || {
        let mut g = stabilized.clone();
        black_box(flush::final_flush(&mut g));
    });

    // Ablation: full pipeline vs pipeline without the flush phase.
    println!("== ablation ==");
    for (label, with_flush) in [
        ("pipeline/with_flush", true),
        ("pipeline/without_flush", false),
    ] {
        bench(label, iters, || {
            let mut g = base.clone();
            g.split_critical_edges();
            init::initialize(&mut g);
            motion::assignment_motion(&mut g);
            if with_flush {
                flush::final_flush(&mut g);
            }
            black_box(g);
        });
    }

    // Sequential vs bit-partitioned parallel solving on a wide universe.
    println!("== solver ==");
    let wide = loop_nest(6, 10);
    let mut wide_init = wide.clone();
    wide_init.split_critical_edges();
    init::initialize(&mut wide_init);
    let universe = PatternUniverse::collect(&wide_init);
    let pg = PointGraph::build(&wide_init);
    let mut problem = Problem::new(
        Direction::Forward,
        Confluence::Must,
        pg.len(),
        universe.assign_count(),
    );
    for point in pg.points() {
        if let Some(instr) = pg.instr(point) {
            for (i, pat) in universe.assign_patterns() {
                if pat.executed_by(instr) {
                    problem.gen[point.index()].insert(i);
                }
                if !pat.transparent_for(instr) {
                    problem.kill[point.index()].insert(i);
                }
            }
        }
    }
    bench("sequential", iters, || {
        black_box(solve(pg.succs(), pg.preds(), &problem));
    });
    for threads in [2usize, 4] {
        bench(&format!("parallel/{threads}"), iters, || {
            black_box(solve_parallel(pg.succs(), pg.preds(), &problem, threads));
        });
    }
}
