//! Per-phase cost breakdown on a representative structured workload,
//! including the Tables 1–3 analyses in isolation — the ablation the
//! DESIGN.md inventory calls out.

use am_bench::workloads::loop_nest;
use am_core::{flush, hoist, init, motion, rae};
use am_dfa::{solve, solve_parallel, Confluence, Direction, PointGraph, Problem};
use am_ir::PatternUniverse;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("phases");
    let base = loop_nest(3, 4);
    let mut prepared = base.clone();
    prepared.split_critical_edges();
    init::initialize(&mut prepared);

    group.bench_function("initialization", |b| {
        b.iter(|| {
            let mut g = base.clone();
            g.split_critical_edges();
            black_box(init::initialize(&mut g))
        })
    });
    group.bench_function("analysis_rae_table2", |b| {
        b.iter(|| black_box(rae::redundant_locs(&prepared)))
    });
    group.bench_function("analysis_hoist_table1", |b| {
        b.iter(|| black_box(hoist::analyze_hoisting(&prepared)))
    });
    group.bench_function("motion_fixpoint", |b| {
        b.iter(|| {
            let mut g = prepared.clone();
            black_box(motion::assignment_motion(&mut g))
        })
    });
    // Flush on the stabilized program (Table 3).
    let mut stabilized = prepared.clone();
    motion::assignment_motion(&mut stabilized);
    group.bench_function("analysis_flush_table3", |b| {
        b.iter(|| {
            let mut g = stabilized.clone();
            black_box(flush::final_flush(&mut g))
        })
    });
    group.finish();

    // Ablation: full pipeline vs pipeline without the flush phase.
    let mut ablation = c.benchmark_group("ablation");
    for (label, with_flush) in [("with_flush", true), ("without_flush", false)] {
        ablation.bench_with_input(
            BenchmarkId::new("pipeline", label),
            &with_flush,
            |b, &with_flush| {
                b.iter(|| {
                    let mut g = base.clone();
                    g.split_critical_edges();
                    init::initialize(&mut g);
                    motion::assignment_motion(&mut g);
                    if with_flush {
                        flush::final_flush(&mut g);
                    }
                    black_box(g)
                })
            },
        );
    }
    ablation.finish();

    // Sequential vs bit-partitioned parallel solving on a wide universe.
    let mut solver = c.benchmark_group("solver");
    let wide = loop_nest(6, 10);
    let mut wide_init = wide.clone();
    wide_init.split_critical_edges();
    init::initialize(&mut wide_init);
    let universe = PatternUniverse::collect(&wide_init);
    let pg = PointGraph::build(&wide_init);
    let mut problem = Problem::new(
        Direction::Forward,
        Confluence::Must,
        pg.len(),
        universe.assign_count(),
    );
    for point in pg.points() {
        if let Some(instr) = pg.instr(point) {
            for (i, pat) in universe.assign_patterns() {
                if pat.executed_by(instr) {
                    problem.gen[point.index()].insert(i);
                }
                if !pat.transparent_for(instr) {
                    problem.kill[point.index()].insert(i);
                }
            }
        }
    }
    solver.bench_function("sequential", |b| {
        b.iter(|| black_box(solve(pg.succs(), pg.preds(), &problem)))
    });
    for threads in [2usize, 4] {
        solver.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(solve_parallel(pg.succs(), pg.preds(), &problem, threads)))
            },
        );
    }
    solver.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
