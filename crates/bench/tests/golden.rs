//! Golden-file snapshots of every figure reproduction: any change to a
//! transformed program is a visible diff. Regenerate with
//! `BLESS=1 cargo test -p am-bench --test golden`.

use am_bench::figures::all_reports;

fn render(report: &am_bench::figures::FigureReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} — {}\n", report.id, report.title));
    out.push_str("## input\n");
    out.push_str(&report.before);
    for (label, text) in &report.after {
        out.push_str(&format!("## {label}\n"));
        out.push_str(text);
    }
    for note in &report.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    out
}

#[test]
fn figures_match_golden_snapshots() {
    let bless = std::env::var("BLESS").is_ok();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden");
    let mut failures = Vec::new();
    for report in all_reports() {
        let rendered = render(&report);
        let path = dir.join(format!("{}.txt", report.id));
        if bless {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == rendered => {}
            Ok(expected) => {
                let diff: Vec<String> = expected
                    .lines()
                    .zip(rendered.lines())
                    .filter(|(a, b)| a != b)
                    .take(5)
                    .map(|(a, b)| format!("- {a}\n+ {b}"))
                    .collect();
                failures.push(format!(
                    "{}: snapshot differs:\n{}",
                    report.id,
                    diff.join("\n")
                ));
            }
            Err(_) => failures.push(format!(
                "{}: missing golden file (run with BLESS=1 to create)",
                report.id
            )),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}
