//! Lint-suite acceptance gates (see `crates/lint`).
//!
//! Two directions, mirroring the translation-validation story:
//!
//! * **Clean**: the optimizer's output is lint-error-free — over the whole
//!   80-program corpus and over 200 seeded random programs. Warnings are
//!   expected (partial redundancies blocked by down-safety, faint source
//!   stores), errors are not.
//! * **Inverted**: each `am-check` fault-injection mode, applied after the
//!   final flush, leaves a corruption the static suite can see — the lints
//!   cross-check the dynamic oracles.

use am_check::campaign::{run_campaign, seed_program, CampaignConfig};
use am_check::fault::{FaultKind, FaultSpec, InjectAt};
use am_check::validate::{validate, FailureKind, Validation, ValidationConfig};
use am_ir::random::corpus80;
use assignment_motion::prelude::*;

/// Optimizer output must carry no error-severity findings: availability of
/// every recomputed expression, definite initialization of every `h_t`,
/// naming discipline, no never-read temporaries (Thms 5.2 and 5.4, checked
/// statically).
#[test]
fn optimized_random_programs_are_lint_error_free_over_200_seeds() {
    for seed in 0..200 {
        let program = seed_program(seed);
        let optimized = optimize(&program).program;
        let report = lint_graph(&optimized, &LintConfig::default());
        assert_eq!(
            report.errors(),
            0,
            "seed {seed}: optimizer output has lint errors:\n{report}"
        );
    }
}

/// Same gate over the named corpus the CI job lints.
#[test]
fn optimized_corpus_is_lint_error_free() {
    for (name, program) in corpus80() {
        let optimized = optimize(&program).program;
        let report = lint_graph(&optimized, &LintConfig::default());
        assert_eq!(
            report.errors(),
            0,
            "{name}: optimizer output has lint errors:\n{report}"
        );
    }
}

/// Validates `text` with linting on, optionally corrupting the final
/// program with `fault` after the flush phase.
fn lint_after(text: &str, fault: Option<FaultKind>) -> Validation {
    let program = parse(text).expect("fixture parses");
    let cfg = ValidationConfig {
        lint: true,
        fault: fault.map(|kind| FaultSpec {
            at: InjectAt::Flush,
            kind,
        }),
        ..ValidationConfig::default()
    };
    validate(&program, &cfg)
}

/// Two uses of `a+1` force a temporary `h<a+1> := a+1`; its initializer
/// holds the first constant of the optimized program.
const TEMP_FIXTURE: &str = "start s\nend e\n\
     node s { x := a+1; y := a+1 }\n\
     node e { out(x,y) }\n\
     edge s -> e";

/// `TweakConst` after the flush turns `h<a+1> := a+1` into
/// `h<a+1> := a+2`: the temporary no longer holds the value its name
/// promises (L011).
#[test]
fn tweak_const_after_flush_trips_the_naming_lint() {
    let clean = lint_after(TEMP_FIXTURE, None);
    let lint = clean.lint.expect("lint ran");
    assert_eq!(lint.errors, 0, "clean fixture must be error-free: {lint:?}");

    let v = lint_after(TEMP_FIXTURE, Some(FaultKind::TweakConst));
    assert!(v.fault_injected, "fixture must offer an injection site");
    let lint = v.lint.expect("lint ran");
    assert!(
        lint.errors > 0,
        "tweaked temp initializer must be an error: {lint:?}"
    );
    assert!(
        lint.lines.iter().any(|l| l.contains("L011")),
        "expected L011, got: {:?}",
        lint.lines
    );
}

/// `DuplicateEval` re-executes the temporary's initializer; the second
/// evaluation recomputes an expression that is must-available (L101) —
/// exactly the redundancy Thm 5.2 says an optimal program cannot contain.
#[test]
fn duplicate_eval_after_flush_trips_the_redundancy_lint() {
    let v = lint_after(TEMP_FIXTURE, Some(FaultKind::DuplicateEval));
    assert!(v.fault_injected, "fixture must offer an injection site");
    let lint = v.lint.expect("lint ran");
    assert!(
        lint.errors > 0,
        "duplicated evaluation must be an error: {lint:?}"
    );
    assert!(
        lint.lines.iter().any(|l| l.contains("L101")),
        "expected L101, got: {:?}",
        lint.lines
    );
}

/// `SwapPatternIds` systematically exchanges the program's first two
/// expression patterns — an id-confusion bug in a hash-consed IR. The
/// fixture is built so the swap leaves one assignment recomputing an
/// expression that is must-available (`z` picks up `y`'s right-hand side,
/// still available at `z`): the static redundancy lint (L101) and the
/// dynamic differential must *both* see the corruption.
#[test]
fn swap_pattern_ids_after_flush_trips_validation_and_the_redundancy_lint() {
    let fixture = "start s\nend e\n\
         node s { x := v0+v1; y := v2+v3; v0 := y+1; z := v0+v1; out(x,y,z) }\n\
         node e { }\n\
         edge s -> e";
    let clean = lint_after(fixture, None);
    assert!(
        clean.passed(),
        "clean fixture must validate: {:?}",
        clean.failure
    );
    assert_eq!(clean.lint.expect("lint ran").errors, 0);

    let v = lint_after(fixture, Some(FaultKind::SwapPatternIds));
    assert!(v.fault_injected, "fixture must offer two distinct patterns");
    let f = v.failure.expect("swapped pattern ids must be caught");
    assert!(
        matches!(f.kind, FailureKind::Semantic { .. }),
        "mis-resolved terms must diverge observably: {f:?}"
    );
    let lint = v.lint.expect("lint ran");
    assert!(
        lint.errors > 0,
        "swapped patterns must leave a lint error: {lint:?}"
    );
    assert!(
        lint.lines.iter().any(|l| l.contains("L101")),
        "expected the full-redundancy lint L101, got: {:?}",
        lint.lines
    );
}

/// `DropInstr` removes the last observation: everything that fed
/// `out(x,y)` — both copies and the temporary's initializer — goes faint,
/// so the run must report strictly more findings than the clean run.
#[test]
fn drop_instr_after_flush_trips_the_faint_lints() {
    let clean = lint_after(TEMP_FIXTURE, None);
    let clean_lint = clean.lint.expect("lint ran");

    let v = lint_after(TEMP_FIXTURE, Some(FaultKind::DropInstr));
    assert!(v.fault_injected, "fixture must offer an injection site");
    let lint = v.lint.expect("lint ran");
    assert!(
        lint.errors + lint.warnings > clean_lint.errors + clean_lint.warnings,
        "dropping an instruction must surface new findings: clean {clean_lint:?}, dropped {lint:?}"
    );
}

/// Campaign-level cross-check: a faulted sweep trips lints on at least one
/// seed; the same sweep without faults trips none.
#[test]
fn campaigns_count_lint_trips_under_injected_faults() {
    let base = CampaignConfig {
        seed_start: 0,
        seed_end: 24,
        runs: 2,
        decisions: 8,
        lint: true,
        bundle_dir: None,
        ..CampaignConfig::default()
    };

    let clean = run_campaign(&base, &mut |_, _| {});
    assert_eq!(
        clean.lints_tripped, 0,
        "clean campaign must not trip error-severity lints"
    );

    let faulted = CampaignConfig {
        fault: Some(FaultSpec {
            at: InjectAt::Flush,
            kind: FaultKind::DuplicateEval,
        }),
        ..base
    };
    let report = run_campaign(&faulted, &mut |_, _| {});
    assert!(
        report.lints_tripped > 0,
        "faulted campaign must trip lints on some seed ({} checked)",
        report.seeds_checked
    );
}
