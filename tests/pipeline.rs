//! Cross-crate end-to-end tests: the public API exercised the way a
//! downstream user would, plus regression tests for interactions between
//! passes.

use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::random::SplitMix64;
use am_ir::random::{structured, StructuredConfig};
use assignment_motion::prelude::*;

const RUNNING_EXAMPLE: &str = "
    start 1
    end 4
    node 1 { y := c+d }
    node 2 { branch x+z > y+i }
    node 3 { y := c+d; x := y+z; i := i+x }
    node 4 { x := y+z; x := c+d; out(i,x,y) }
    edge 1 -> 2
    edge 2 -> 3, 4
    edge 3 -> 2
";

#[test]
fn quickstart_workflow() {
    let program = parse(RUNNING_EXAMPLE).unwrap();
    let result = optimize(&program);
    let report = compare(
        &program,
        &result.program,
        &CompareConfig {
            inputs: vec![
                ("c".into(), 1),
                ("d".into(), 2),
                ("x".into(), 3),
                ("z".into(), 4),
                ("i".into(), 0),
            ],
            ..Default::default()
        },
    );
    assert!(report.semantically_equal());
    assert!(report.expression_dominates());
    assert!(report.expr_evals_b < report.expr_evals_a);
}

#[test]
fn nested_frontend_to_optimized_pipeline() {
    // Sec. 6: nested input, decomposed, fully optimized; the temporaries
    // introduced by decomposition are reconstructed away where useless.
    let src = "start 0\nend 3\n\
         node 0 { skip }\n\
         node 1 { x := (a+b)*(a+b) }\n\
         node 2 { branch q > 0 }\n\
         node 3 { out(x) }\n\
         edge 0 -> 1\nedge 1 -> 2\nedge 2 -> 1, 3";
    let nested = parse_with_mode(src, Mode::Decompose).unwrap();
    let result = optimize(&nested);
    // Loop body emptied: everything is invariant.
    let text = canonical_text(&result.program);
    assert!(text.contains("node 1 {\n}"), "{text}");
    for q in [0, 2] {
        let cfg = Config::with_inputs(vec![("a", 3), ("b", 4), ("q", q)]);
        let r0 = run(&nested, &cfg);
        let r1 = run(&result.program, &cfg);
        assert_eq!(r0.observable(), r1.observable());
        assert!(r1.expr_evals <= r0.expr_evals);
    }
}

#[test]
fn em_cp_iteration_stays_sound() {
    // Regression: iterated BCM+flush+copy-propagation once dropped an
    // initialization whose single use sat inside another pattern's
    // instance (see flush.rs: the materialize-at-removed-instance rule).
    let src = "start 0\nend 3\n\
         node 0 { skip }\n\
         node 1 { t1 := a+b; x := t1+c }\n\
         node 2 { branch q > 0 }\n\
         node 3 { out(x) }\n\
         edge 0 -> 1\nedge 1 -> 2\nedge 2 -> 1, 3";
    let orig = parse(src).unwrap();
    let mut g = orig.clone();
    g.split_critical_edges();
    for _ in 0..4 {
        let before = g.clone();
        lazy_expression_motion(&mut g);
        assignment_motion::alg::copyprop::copy_propagation(&mut g, true);
        for q in [0, 1, 3] {
            let cfg = Config::with_inputs(vec![("a", 1), ("b", 2), ("c", 3), ("q", q)]);
            assert_eq!(
                run(&orig, &cfg).observable(),
                run(&g, &cfg).observable(),
                "q={q}\n{}",
                canonical_text(&g)
            );
        }
        if g == before {
            break;
        }
    }
}

#[test]
fn sinking_composes_with_the_main_pipeline() {
    // PDE as a post-pass: still semantics-preserving (no div in program).
    let mut rng = SplitMix64::new(99);
    let orig = structured(&mut rng, &StructuredConfig::default());
    let mut g = optimize(&orig).program;
    sink_assignments(&mut g, &SinkConfig::default());
    assert_eq!(g.validate(), Ok(()));
    for seed in 0..8 {
        let cfg = Config {
            oracle: Oracle::random(seed, 12),
            inputs: vec![("v0".into(), 5), ("v1".into(), -1)],
            ..Config::default()
        };
        assert_eq!(
            run(&orig, &cfg).observable(),
            run(&g, &cfg).observable(),
            "seed {seed}"
        );
    }
}

#[test]
fn temporaries_pay_for_themselves() {
    // Lemma 4.4(2): a temporary only survives the flush when it eliminates
    // a partial redundancy. On a program with no redundancy at all, no
    // temporary survives.
    let src = "start 1\nend 2\nnode 1 { x := a+b; y := c+d }\nnode 2 { out(x,y) }\nedge 1 -> 2";
    let g = parse(src).unwrap();
    let result = optimize(&g);
    let text = canonical_text(&result.program);
    assert!(!text.contains("h1"), "no temporaries expected:\n{text}");
    assert!(alpha_eq(&result.program, &g), "program unchanged");
}

#[test]
fn deterministic_interpretation_matches_oracle_mode() {
    let program = parse(RUNNING_EXAMPLE).unwrap();
    let optimized = optimize(&program).program;
    // Deterministic mode: conditions actually decide.
    for (c, d, x, z) in [(1, 2, 3, 4), (0, 0, 0, 0), (-5, 2, 7, 1)] {
        let cfg = Config::with_inputs(vec![("c", c), ("d", d), ("x", x), ("z", z)]);
        let r0 = run(&program, &cfg);
        let r1 = run(&optimized, &cfg);
        assert_eq!(r0.observable(), r1.observable());
        // Some inputs loop forever (the branch never exits); both programs
        // must then agree on hitting the step limit instead of the end.
        assert_eq!(r0.stop, r1.stop);
    }
}

#[test]
fn dataflow_framework_is_reusable_downstream() {
    // A downstream user building their own analysis with the framework.
    use assignment_motion::dfa::{solve, Confluence, Direction, PointGraph, Problem};
    let g = parse(RUNNING_EXAMPLE).unwrap();
    let pg = PointGraph::build(&g);
    // "Reaches a write statement": backward may.
    let mut p = Problem::new(Direction::Backward, Confluence::May, pg.len(), 1);
    for point in pg.points() {
        if let Some(am_ir::Instr::Out(_)) = pg.instr(point) {
            p.gen[point.index()].insert(0);
        }
    }
    let sol = solve(pg.succs(), pg.preds(), &p);
    // Every point of this program reaches the out() in node 4.
    for point in pg.points() {
        assert!(sol.before[point.index()].contains(0));
    }
}

#[test]
fn busy_and_lazy_motion_agree_dynamically() {
    // BCM and LCM are both expression-optimal: equal evaluation counts on
    // corresponding runs, but LCM uses no more temporary assignments.
    for seed in 0..12u64 {
        let mut rng = SplitMix64::new(seed + 7_000);
        let orig = structured(&mut rng, &StructuredConfig::default());
        let mut bcm = orig.clone();
        bcm.split_critical_edges();
        busy_expression_motion(&mut bcm);
        let mut lcm = orig.clone();
        lcm.split_critical_edges();
        lazy_expression_motion(&mut lcm);
        for run_seed in 0..4 {
            let cfg = Config {
                oracle: Oracle::random(seed * 17 + run_seed, 10),
                inputs: vec![("v0".into(), 2), ("v1".into(), 3)],
                ..Config::default()
            };
            let rb = run(&bcm, &cfg);
            let rl = run(&lcm, &cfg);
            assert_eq!(rb.observable(), rl.observable(), "seed {seed}/{run_seed}");
            if rb.stop == StopReason::ReachedEnd && rl.stop == StopReason::ReachedEnd {
                assert_eq!(rb.expr_evals, rl.expr_evals, "seed {seed}/{run_seed}");
                assert!(
                    rl.temp_assign_execs <= rb.temp_assign_execs,
                    "laziness must not add temporary work (seed {seed}/{run_seed})"
                );
            }
        }
    }
}

#[test]
fn pipeline_is_cost_idempotent() {
    // Optimizing an already-optimized program changes no run costs.
    use am_ir::random::{structured, StructuredConfig};
    for seed in 0..10u64 {
        let mut rng = SplitMix64::new(seed + 51_000);
        let orig = structured(&mut rng, &StructuredConfig::default());
        let once = optimize(&orig).program;
        let twice = optimize(&once).program;
        for run_seed in 0..4 {
            let cfg = Config {
                oracle: Oracle::random(seed * 19 + run_seed, 10),
                inputs: vec![("v0".into(), 4), ("v1".into(), -3)],
                ..Config::default()
            };
            let a = run(&once, &cfg);
            let b = run(&twice, &cfg);
            assert_eq!(a.observable(), b.observable(), "seed {seed}/{run_seed}");
            if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
                assert_eq!(a.expr_evals, b.expr_evals, "seed {seed}/{run_seed}");
                assert_eq!(
                    a.temp_assign_execs, b.temp_assign_execs,
                    "seed {seed}/{run_seed}"
                );
            }
        }
    }
}

#[test]
fn simplified_graphs_compose_with_the_pipeline() {
    use am_ir::random::{structured, StructuredConfig};
    for seed in 0..10u64 {
        let mut rng = SplitMix64::new(seed + 61_000);
        let orig = structured(&mut rng, &StructuredConfig::default());
        let optimized = optimize(&orig).program;
        let simplified = optimized.simplified();
        assert_eq!(simplified.validate(), Ok(()), "seed {seed}");
        for run_seed in 0..4 {
            let cfg = Config {
                oracle: Oracle::random(seed * 23 + run_seed, 10),
                inputs: vec![("v0".into(), 1), ("v1".into(), 2)],
                ..Config::default()
            };
            assert_eq!(
                run(&optimized, &cfg).observable(),
                run(&simplified, &cfg).observable(),
                "seed {seed}/{run_seed}"
            );
        }
    }
}

#[test]
fn equal_condition_sides_keep_one_initialization() {
    // branch a+b > a+b: both sides are the same pattern; after
    // initialization the branch reads the temporary twice. The flush must
    // not reconstruct (that would double the evaluation) nor lose the
    // initialization.
    let src = "start s\nend e\n\
         node s { branch a+b > a+b }\n\
         node t { x := 1 }\n\
         node f { x := 2 }\n\
         node e { out(x) }\n\
         edge s -> t, f\nedge t -> e\nedge f -> e";
    let orig = parse(src).unwrap();
    let result = optimize(&orig);
    let text = canonical_text(&result.program);
    assert!(text.contains("h1 := a+b"), "{text}");
    assert!(text.contains("branch h1 > h1"), "{text}");
    for d in [0usize, 1] {
        let cfg = RunConfig {
            oracle: Oracle::Fixed(vec![d]),
            inputs: vec![("a".into(), 3), ("b".into(), 4)],
            ..RunConfig::default()
        };
        let a = run(&orig, &cfg);
        let b = run(&result.program, &cfg);
        assert_eq!(a.observable(), b.observable());
        // One evaluation instead of two.
        assert_eq!(a.expr_evals, 2);
        assert_eq!(b.expr_evals, 1);
    }
}

#[test]
fn single_node_program_is_handled() {
    // start == end: the smallest valid flow graph.
    let mut g = FlowGraph::new();
    let s = g.add_node("s");
    g.set_start(s);
    g.set_end(s);
    let x = g.pool_mut().intern("x");
    let a = g.pool_mut().intern("a");
    let b = g.pool_mut().intern("b");
    g.block_mut(s).instrs.push(am_ir::Instr::assign(
        x,
        am_ir::Term::binary(am_ir::BinOp::Add, a, b),
    ));
    g.block_mut(s)
        .instrs
        .push(am_ir::Instr::Out(vec![x.into()]));
    assert_eq!(g.validate(), Ok(()));
    let result = optimize(&g);
    let cfg = RunConfig::with_inputs(vec![("a", 1), ("b", 2)]);
    assert_eq!(
        run(&g, &cfg).observable(),
        run(&result.program, &cfg).observable()
    );
}

#[test]
fn self_referential_chains_survive_the_pipeline() {
    // i := i+1 patterns can never be eliminated or merged; the pipeline
    // must leave their per-iteration effect intact.
    let src = "start 1\nend 4\n\
         node 1 { i := 0 }\n\
         node 2 { branch i < n }\n\
         node 3 { i := i+1; s := s+i }\n\
         node 4 { out(i,s) }\n\
         edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";
    let orig = parse(src).unwrap();
    let result = optimize(&orig);
    for n in [0, 1, 5] {
        let cfg = RunConfig::with_inputs(vec![("n", n)]);
        let a = run(&orig, &cfg);
        let b = run(&result.program, &cfg);
        assert_eq!(a.observable(), b.observable(), "n={n}");
        assert_eq!(a.expr_evals, b.expr_evals, "self-ref evals can't shrink");
    }
}

#[test]
fn skip_heavy_programs_are_stable() {
    let src = "start 1\nend 3\n\
         node 1 { skip; skip; x := a+b; skip }\n\
         node 2 { skip }\n\
         node 3 { skip; out(x) }\n\
         edge 1 -> 2\nedge 2 -> 3";
    let orig = parse(src).unwrap();
    let result = optimize(&orig);
    let cfg = RunConfig::with_inputs(vec![("a", 1), ("b", 2)]);
    assert_eq!(
        run(&orig, &cfg).observable(),
        run(&result.program, &cfg).observable()
    );
}

#[test]
fn stress_large_structured_program() {
    // A sizeable nest end-to-end: convergence within budget, validity,
    // semantics, and a real evaluation win.
    let g = am_bench::workloads::loop_nest(8, 8);
    let result = optimize(&g);
    assert!(result.motion.converged);
    assert_eq!(result.program.validate(), Ok(()));
    let cfg = RunConfig::with_inputs(vec![("n", 4), ("a", 3)]);
    let a = run(&g, &cfg);
    let b = run(&result.program, &cfg);
    assert_eq!(a.observable(), b.observable());
    assert!(b.expr_evals < a.expr_evals);
    assert!(
        (b.expr_evals as f64) < 0.7 * a.expr_evals as f64,
        "expected a substantial win: {} -> {}",
        a.expr_evals,
        b.expr_evals
    );
}

#[test]
fn run_pair_convenience() {
    let g = parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
    let opt = optimize(&g).program;
    let (ra, rb) = assignment_motion::alg::verify::run_pair(&g, &opt, vec![("a", 1), ("b", 2)]);
    assert_eq!(ra.observable(), rb.observable());
}

#[test]
fn shipped_sample_programs_compile_and_optimize() {
    // The programs/ directory must stay in sync with the parsers.
    let ir = std::fs::read_to_string("programs/running_example.ir").unwrap();
    let g = parse(&ir).unwrap();
    assert!(optimize(&g).motion.converged);
    for file in ["programs/matrix_sum.wl", "programs/polynomial.wl"] {
        let src = std::fs::read_to_string(file).unwrap();
        let g = assignment_motion::lang::compile(&src).unwrap();
        let result = optimize(&g);
        assert!(result.motion.converged, "{file}");
        let cfg = RunConfig::with_inputs(vec![
            ("rows", 3),
            ("cols", 4),
            ("base", 100),
            ("degree", 5),
            ("x", 2),
        ]);
        let a = run(&g, &cfg);
        let b = run(&result.program, &cfg);
        assert_eq!(a.observable(), b.observable(), "{file}");
        assert!(b.expr_evals <= a.expr_evals, "{file}");
    }
}
