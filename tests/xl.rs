//! XL-scale solver equivalence: the point-partitioned parallel solver
//! must produce bit-identical `Solution`s to the serial scheduled solver
//! on the three XL workload shapes, for every tested worker count, and
//! the full optimizer must be worker-count deterministic on graphs big
//! enough to engage the partitioned path at its default thresholds.
//!
//! Shapes are scaled-down instances of the `bench_dataflow --xl` ladder
//! families (same generators, same topology) so the suite stays fast;
//! partition thresholds are forced low where the default ones would
//! bypass the partitioned path on the smaller graphs.

use am_bench::workloads::{inlined_program, nest_grid, wide_fan};
use am_core::global::{optimize_with, GlobalConfig};
use am_dfa::classic::{
    anticipated_expressions_problem, available_expressions_problem, live_variables_problem,
    partially_available_expressions_problem, reaching_copies_problem,
};
use am_dfa::{solve_partitioned_with, solve_scheduled, PartitionOptions, PointGraph};
use am_ir::{FlowGraph, PatternUniverse};

fn xl_shapes() -> Vec<(&'static str, FlowGraph)> {
    vec![
        ("nest-grid", nest_grid(60, 2, 4)),
        ("wide-fan", wide_fan(300, 4)),
        ("inlined-program", inlined_program(200, 12)),
    ]
}

#[test]
fn partitioned_solver_is_bit_identical_on_xl_shapes_for_every_worker_count() {
    for (name, g) in xl_shapes() {
        assert_eq!(g.validate(), Ok(()), "{name}");
        let pg = PointGraph::build(&g);
        let universe = PatternUniverse::collect(&g);
        let problems = [
            ("available", available_expressions_problem(&pg, &universe)),
            (
                "anticipated",
                anticipated_expressions_problem(&pg, &universe),
            ),
            (
                "partially-available",
                partially_available_expressions_problem(&pg, &universe),
            ),
            ("live", live_variables_problem(&pg)),
            ("reaching-copies", reaching_copies_problem(&pg, &universe)),
        ];
        for (analysis, problem) in &problems {
            let serial = solve_scheduled(pg.succs(), pg.preds(), problem, pg.schedule());
            let mut counters = None;
            for workers in [1usize, 2, 4, 8] {
                let opts = PartitionOptions {
                    workers,
                    target_points: 64,
                    min_points: 0,
                };
                let part =
                    solve_partitioned_with(pg.succs(), pg.preds(), problem, pg.schedule(), &opts);
                assert_eq!(
                    part.before, serial.before,
                    "{name}/{analysis}: before-facts diverge (workers={workers})"
                );
                assert_eq!(
                    part.after, serial.after,
                    "{name}/{analysis}: after-facts diverge (workers={workers})"
                );
                // Counters must not depend on thread timing: every worker
                // count that actually partitions reports the same work.
                if workers > 1 {
                    let snapshot = (part.iterations, part.worklist_pushes, part.max_worklist_len);
                    match counters {
                        None => counters = Some(snapshot),
                        Some(expected) => assert_eq!(
                            snapshot, expected,
                            "{name}/{analysis}: counters vary with worker count"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn optimizer_is_worker_count_deterministic_at_default_thresholds() {
    // Big enough that cold solves clear the partitioned path's default
    // 4096-point engagement threshold.
    let g = nest_grid(300, 2, 4);
    assert!(PointGraph::build(&g).len() >= 4096);
    let serial = optimize_with(&g, &GlobalConfig::default());
    let parallel = optimize_with(
        &g,
        &GlobalConfig {
            solver_workers: 8,
            ..Default::default()
        },
    );
    assert!(serial.motion.converged && parallel.motion.converged);
    assert_eq!(
        am_ir::text::to_text(&serial.program),
        am_ir::text::to_text(&parallel.program),
        "optimized program depends on worker count"
    );
    assert_eq!(serial.motion.rounds, parallel.motion.rounds);
    assert_eq!(serial.motion.eliminated, parallel.motion.eliminated);
    assert_eq!(serial.motion.inserted, parallel.motion.inserted);
    assert_eq!(serial.motion.removed, parallel.motion.removed);
}
