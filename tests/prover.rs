//! Acceptance tests for the symbolic equivalence prover (`am-prove`).
//!
//! * Every phase transition of the optimizer is statically **Proved** on
//!   the whole 80-program corpus and 200 random programs, with an
//!   Inconclusive rate of at most 5% and zero refutations.
//! * Every fault kind the checker can inject is statically **Refuted**,
//!   with a witness path this test replays through the interpreter to
//!   confirm the divergence — no dynamic oracle needed to find the bug.
//! * A loop-carried reassociation the prover cannot decide is
//!   **Inconclusive** (never Refuted), and the dynamic oracle then passes
//!   it — the documented fallback.

use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::random::{
    corpus80, structured, unstructured, SplitMix64, StructuredConfig, UnstructuredConfig,
};
use am_ir::text::parse;
use am_ir::FlowGraph;
use am_prove::{prove_optimization, prove_pair, ProveConfig, ProveStats, RefuteKind, Verdict};
use assignment_motion::prelude::*;

/// The full static sweep: corpus80 plus 200 random programs, every phase
/// transition proved. The ≤5% inconclusive budget exists for loop-carried
/// cases the symbolic domain cannot decide; at the time of writing the
/// sweep's fallback rate is under 2% (44 of 2330 pairs).
#[test]
fn optimizer_is_statically_proved_on_corpus_and_random_programs() {
    let cfg = ProveConfig::default();
    let mut stats = ProveStats::default();
    let mut bad: Vec<String> = Vec::new();
    let mut programs: Vec<(String, FlowGraph)> = corpus80();
    for seed in 0..200u64 {
        let mut rng = SplitMix64::new(seed);
        let g = if seed % 2 == 0 {
            structured(&mut rng, &StructuredConfig::default())
        } else {
            unstructured(&mut rng, &UnstructuredConfig::default())
        };
        programs.push((format!("random-{seed}"), g));
    }
    for (name, g) in &programs {
        let outcome = prove_optimization(g, None, &cfg);
        stats.accumulate(&outcome.stats);
        for (stage, o) in &outcome.stages {
            if o.verdict != Verdict::Proved {
                bad.push(format!("{name}/{stage}: {} ({})", o.verdict, o.reason));
            }
        }
    }
    assert_eq!(
        stats.refuted, 0,
        "static refutations on correct runs: {bad:?}"
    );
    assert!(
        stats.inconclusive * 20 <= stats.total(),
        "inconclusive rate above 5%: {stats} — {bad:?}"
    );
}

/// Replays a refutation witness and reports whether the two programs'
/// observables actually differ under it.
fn witness_diverges(
    a: &FlowGraph,
    b: &FlowGraph,
    decisions: &[usize],
    inputs: &[(String, i64)],
) -> bool {
    let cfg = Config {
        oracle: Oracle::Fixed(decisions.to_vec()),
        inputs: inputs.to_vec(),
        ..Config::default()
    };
    let ra = run(a, &cfg);
    let rb = run(b, &cfg);
    ra.observable() != rb.observable()
}

/// Each injectable fault kind must be *statically* refuted on some corpus
/// program, and the witness the prover hands back must reproduce the
/// divergence in the interpreter.
#[test]
fn every_fault_kind_is_statically_refuted_with_a_confirmed_witness() {
    use assignment_motion::check::fault::{apply_fault, FaultKind};
    let cfg = ProveConfig::default();
    let kinds = [
        (FaultKind::TweakConst, RefuteKind::Semantic),
        (FaultKind::DropInstr, RefuteKind::Semantic),
        (FaultKind::DuplicateEval, RefuteKind::Optimality),
        (FaultKind::SwapPatternIds, RefuteKind::Semantic),
    ];
    for (kind, want) in kinds {
        let mut refuted = false;
        for (name, g) in corpus80() {
            let optimized = optimize(&g).program;
            let mut faulted = optimized.clone();
            if !apply_fault(&mut faulted, kind) {
                continue;
            }
            let o = prove_pair(&optimized, &faulted, &cfg);
            if o.verdict != Verdict::Refuted {
                continue;
            }
            let r = o.refutation.expect("refuted outcome carries a witness");
            assert_eq!(r.kind, want, "{kind:?} on {name}: wrong refutation kind");
            match r.kind {
                RefuteKind::Semantic => {
                    assert!(
                        witness_diverges(&optimized, &faulted, &r.decisions, &r.inputs),
                        "{kind:?} on {name}: witness does not reproduce in the interpreter"
                    );
                }
                RefuteKind::Optimality => {
                    let rcfg = Config {
                        oracle: Oracle::Fixed(r.decisions.clone()),
                        inputs: r.inputs.clone(),
                        ..Config::default()
                    };
                    let ra = run(&optimized, &rcfg);
                    let rb = run(&faulted, &rcfg);
                    assert_eq!(ra.stop, StopReason::ReachedEnd);
                    assert_eq!(rb.stop, StopReason::ReachedEnd);
                    assert!(
                        rb.expr_evals > ra.expr_evals,
                        "{kind:?} on {name}: witness shows no extra evaluations"
                    );
                }
            }
            refuted = true;
            break;
        }
        assert!(
            refuted,
            "{kind:?}: no corpus program was statically refuted"
        );
    }
}

/// A loop-carried reassociation (`x+1+1` each trip vs `x+2` each trip) is
/// beyond the prover's normalization: the loop join widens `x`, the two
/// increments never meet in one value, and the candidate divergence does
/// not reproduce concretely — so the verdict must be Inconclusive (the
/// sound "I don't know", never a refutation), and the dynamic oracle then
/// accepts the pair.
#[test]
fn loop_carried_reassociation_is_inconclusive_and_passes_dynamically() {
    let a = parse(
        "start s\nend e\n\
         node s { x := 0 }\n\
         node l { x := x+1; x := x+1; branch x < v0 }\n\
         node e { out(x) }\n\
         edge s -> l\nedge l -> l, e",
    )
    .unwrap();
    let b = parse(
        "start s\nend e\n\
         node s { x := 0 }\n\
         node l { x := x+2; branch x < v0 }\n\
         node e { out(x) }\n\
         edge s -> l\nedge l -> l, e",
    )
    .unwrap();
    let o = prove_pair(&a, &b, &ProveConfig::default());
    assert_eq!(o.verdict, Verdict::Inconclusive, "{}", o.reason);
    // The dynamic oracle (the checker's differential comparison) passes.
    let report = compare(&a, &b, &Default::default());
    assert!(report.semantically_equal());
}
