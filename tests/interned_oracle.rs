//! Interned-vs-structural differential oracle, pinned against the golden
//! stable-hash fixture.
//!
//! The interning refactor replaced the IR's structural identity plumbing
//! (per-round universe re-collection, text-based content hashing) with
//! arena ids and cached fingerprints. Nothing observable may move: the
//! `stable_hash` content addresses — the keys of `am-pipeline`'s result
//! cache and `am-serve`'s persistent `v1/<shard>/<hash>.json` store — and
//! every byte of optimized output must be exactly what the structural
//! implementation produced. This test replays the full 280-program fixture
//! (`tests/fixtures/golden_hashes.txt`, generated from the pre-refactor
//! tree; regenerate with `cargo run --release --example golden_hashes`)
//! and cross-checks the streamed hash path against the text path.

use std::collections::HashMap;

use am_core::global::optimize;
use am_ir::alpha::{canonical_text, stable_hash, stable_hash_text};
use am_ir::random::{corpus80, structured, unstructured, StructuredConfig, UnstructuredConfig};
use am_ir::rng::SplitMix64;
use am_ir::{reference_universe, FlowGraph, PatternUniverse};

/// The fixture programs, rebuilt exactly as `examples/golden_hashes.rs`
/// emits them: the shared 80-program corpus plus 200 extra seeded graphs.
fn fixture_programs() -> Vec<(String, String, FlowGraph)> {
    let mut out = Vec::new();
    for (name, g) in corpus80() {
        out.push(("corpus80".to_owned(), name, g));
    }
    for seed in 1000..1100u64 {
        let mut rng = SplitMix64::new(seed);
        let g = structured(
            &mut rng,
            &StructuredConfig {
                allow_div: seed % 2 == 0,
                max_depth: 2 + (seed as usize % 3),
                ..Default::default()
            },
        );
        out.push(("structured".to_owned(), seed.to_string(), g));
    }
    for seed in 2000..2100u64 {
        let mut rng = SplitMix64::new(seed);
        let g = unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes: 4 + (seed as usize % 16),
                extra_edges: 1 + (seed as usize % 10),
                max_instrs: 4,
                num_vars: 6,
                allow_div: seed % 3 == 0,
            },
        );
        out.push(("unstructured".to_owned(), seed.to_string(), g));
    }
    out
}

fn golden() -> HashMap<(String, String), (u64, u64)> {
    let text = include_str!("fixtures/golden_hashes.txt");
    let mut map = HashMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let mut parts = line.split_whitespace();
        let family = parts.next().expect("family").to_owned();
        let name = parts.next().expect("name").to_owned();
        let input = u64::from_str_radix(parts.next().expect("input hash"), 16).unwrap();
        let output = u64::from_str_radix(parts.next().expect("output hash"), 16).unwrap();
        assert!(parts.next().is_none(), "trailing fields in fixture: {line}");
        let dup = map.insert((family, name), (input, output));
        assert!(dup.is_none(), "duplicate fixture line: {line}");
    }
    map
}

/// Every input content address and every optimized-output hash matches the
/// fixture bit for bit — the disk-cache keys survive the interning refactor
/// and the optimizer's output is unchanged on all 280 programs.
#[test]
fn golden_hashes_are_bit_identical() {
    let golden = golden();
    let programs = fixture_programs();
    assert_eq!(golden.len(), 280, "fixture must cover all 280 programs");
    assert_eq!(programs.len(), 280);
    for (family, name, g) in &programs {
        let &(want_in, want_out) = golden
            .get(&(family.clone(), name.clone()))
            .unwrap_or_else(|| panic!("{family} {name} missing from fixture"));
        assert_eq!(
            stable_hash(g),
            want_in,
            "{family} {name}: input content address drifted"
        );
        assert_eq!(
            stable_hash(&optimize(g).program),
            want_out,
            "{family} {name}: optimized output drifted"
        );
    }
}

/// The streamed hash (`stable_hash`, a direct `fmt::Write` sink) and the
/// text-path hash (`stable_hash_text` over the materialised
/// `canonical_text`) are the same function, on inputs and on optimizer
/// outputs.
#[test]
fn streamed_and_text_hash_paths_agree_on_corpus() {
    for (name, g) in corpus80() {
        assert_eq!(
            stable_hash(&g),
            stable_hash_text(&canonical_text(&g)),
            "{name}: hash paths disagree on input"
        );
        let opt = optimize(&g).program;
        assert_eq!(
            stable_hash(&opt),
            stable_hash_text(&canonical_text(&opt)),
            "{name}: hash paths disagree on optimized output"
        );
    }
}

/// The arena-backed `PatternUniverse` enumerates exactly the patterns the
/// naive linear-scan reference finds, in the same first-occurrence order.
#[test]
fn interned_universe_matches_reference_on_corpus() {
    for (name, g) in corpus80() {
        let interned = PatternUniverse::collect(&g);
        let (ref_assigns, ref_exprs) = reference_universe(&g);
        assert_eq!(
            interned.assign_count(),
            ref_assigns.len(),
            "{name}: assign-pattern count"
        );
        for (i, ap) in ref_assigns.iter().enumerate() {
            assert_eq!(interned.assign(i), *ap, "{name}: assign pattern {i}");
        }
        assert_eq!(interned.expr_count(), ref_exprs.len(), "{name}: expr count");
        for (i, t) in ref_exprs.iter().enumerate() {
            assert_eq!(interned.expr(i), *t, "{name}: expr pattern {i}");
            assert_eq!(interned.expr_id(t), Some(i), "{name}: expr id {i}");
        }
    }
}
