//! Property-based tests for the paper's theorems over random programs.
//!
//! * Thm 5.1 (correctness): the transformed program is observationally
//!   equivalent to the original on corresponding runs.
//! * Thm 5.2 (expression optimality): no complete corresponding run of the
//!   transformed program evaluates more expressions — and the output also
//!   dominates every baseline (EM only, AM only, restricted AM).
//! * Thm 5.3/5.4 (relative optimality): the output is a fixed point of
//!   further assignment motion and flushing.
//!
//! Each test draws its cases from a fixed `SplitMix64` stream, so a failure
//! reproduces deterministically from the printed case number.

use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::random::{structured, unstructured, SplitMix64, StructuredConfig, UnstructuredConfig};
use am_ir::FlowGraph;
use assignment_motion::prelude::*;

const CASES: u64 = 48;

fn arbitrary_program(seed: u64, unstructured_graph: bool) -> FlowGraph {
    let mut rng = SplitMix64::new(seed);
    if unstructured_graph {
        unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes: 10,
                extra_edges: 5,
                max_instrs: 3,
                num_vars: 5,
                allow_div: false,
            },
        )
    } else {
        structured(&mut rng, &StructuredConfig::default())
    }
}

fn run_cfg(seed: u64, inputs: &[(String, i64)]) -> Config {
    Config {
        oracle: Oracle::random(seed, 12),
        inputs: inputs.to_vec(),
        ..Config::default()
    }
}

fn inputs(values: [i64; 3]) -> Vec<(String, i64)> {
    vec![
        ("v0".into(), values[0]),
        ("v1".into(), values[1]),
        ("v2".into(), values[2]),
    ]
}

/// Samples the common per-case parameters: program seed, graph family,
/// three small input values, and a run-oracle seed.
fn sample_case(rng: &mut SplitMix64) -> (u64, bool, [i64; 3], u64) {
    let seed = rng.gen_range(0u64..2_000);
    let unstructured_graph = rng.gen_bool(0.5);
    let vals = [
        rng.gen_range(-8i64..8),
        rng.gen_range(-8i64..8),
        rng.gen_range(-8i64..8),
    ];
    let run_seed = rng.gen_range(0u64..1_000);
    (seed, unstructured_graph, vals, run_seed)
}

#[test]
fn global_preserves_semantics_and_expression_optimality() {
    let mut sampler = SplitMix64::new(0x9A01);
    for case in 0..CASES {
        let (seed, unstructured_graph, vals, run_seed) = sample_case(&mut sampler);
        let program = arbitrary_program(seed, unstructured_graph);
        let result = optimize(&program);
        assert!(result.motion.converged, "case {case}");
        assert_eq!(result.program.validate(), Ok(()), "case {case}");
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&program, &cfg);
        let b = run(&result.program, &cfg);
        assert_eq!(a.observable(), b.observable(), "case {case}");
        if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
            assert!(
                b.expr_evals <= a.expr_evals,
                "case {case}: expression optimality violated: {} -> {}",
                a.expr_evals,
                b.expr_evals
            );
            // The refined per-pattern claim of Def. 3.8(1): each pattern is
            // evaluated at most as often as in the original.
            assert!(
                am_core::verify::pattern_dominates(&a, &b),
                "case {case}: per-pattern optimality violated: {:?} vs {:?}",
                a.expr_evals_by_pattern,
                b.expr_evals_by_pattern
            );
        }
    }
}

#[test]
fn global_dominates_baselines() {
    let mut sampler = SplitMix64::new(0x9A02);
    for case in 0..CASES {
        let (seed, _, vals, run_seed) = sample_case(&mut sampler);
        let program = arbitrary_program(seed % 800, false);
        let full = optimize(&program).program;

        let mut em = program.clone();
        em.split_critical_edges();
        lazy_expression_motion(&mut em);

        let mut am = program.clone();
        am.split_critical_edges();
        assignment_motion(&mut am);

        let cfg = run_cfg(run_seed, &inputs(vals));
        let r_full = run(&full, &cfg);
        for (label, g) in [("em", &em), ("am", &am)] {
            let r_base = run(g, &cfg);
            assert_eq!(
                r_base.observable(),
                r_full.observable(),
                "case {case}: {label} semantics"
            );
            if r_base.stop == StopReason::ReachedEnd && r_full.stop == StopReason::ReachedEnd {
                assert!(
                    r_full.expr_evals <= r_base.expr_evals,
                    "case {case} {label}: {} < {} (full should dominate)",
                    r_base.expr_evals,
                    r_full.expr_evals
                );
            }
        }
    }
}

#[test]
fn output_is_a_fixpoint_of_further_motion() {
    // Thm 5.3: further assignment motion cannot improve the output —
    // nothing is eliminated and no run gets cheaper. (The program text
    // may still change by reordering independent instructions within a
    // block, which is cost-neutral.)
    let mut sampler = SplitMix64::new(0x9A03);
    for case in 0..CASES {
        let (seed, _, vals, run_seed) = sample_case(&mut sampler);
        let program = arbitrary_program(seed % 800, false);
        let result = optimize(&program);
        let mut again = result.program.clone();
        let stats = assignment_motion(&mut again);
        assert!(stats.converged, "case {case}");
        assert_eq!(
            stats.eliminated, 0,
            "case {case}: relative assignment optimality"
        );
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&result.program, &cfg);
        let b = run(&again, &cfg);
        assert_eq!(a.observable(), b.observable(), "case {case}");
        if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
            assert_eq!(a.expr_evals, b.expr_evals, "case {case}");
            assert_eq!(a.assign_execs, b.assign_execs, "case {case}");
        }
    }
}

#[test]
fn em_baseline_preserves_semantics() {
    let mut sampler = SplitMix64::new(0x9A04);
    for case in 0..CASES {
        let (seed, unstructured_graph, vals, run_seed) = sample_case(&mut sampler);
        let program = arbitrary_program(seed % 1_000, unstructured_graph);
        let mut em = program.clone();
        em.split_critical_edges();
        lazy_expression_motion(&mut em);
        assert_eq!(em.validate(), Ok(()), "case {case}");
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&program, &cfg);
        let b = run(&em, &cfg);
        assert_eq!(a.observable(), b.observable(), "case {case}");
        if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
            assert!(b.expr_evals <= a.expr_evals, "case {case}");
        }
    }
}

#[test]
fn restricted_baseline_preserves_semantics() {
    let mut sampler = SplitMix64::new(0x9A05);
    for case in 0..CASES {
        let (seed, _, vals, run_seed) = sample_case(&mut sampler);
        let program = arbitrary_program(seed % 500, false);
        let mut restricted = program.clone();
        restricted.split_critical_edges();
        restricted_assignment_motion(&mut restricted);
        assert_eq!(restricted.validate(), Ok(()), "case {case}");
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&program, &cfg);
        let b = run(&restricted, &cfg);
        assert_eq!(a.observable(), b.observable(), "case {case}");
    }
}

#[test]
fn parser_round_trips_generated_programs() {
    let mut sampler = SplitMix64::new(0x9A06);
    for case in 0..CASES {
        let (seed, unstructured_graph, _, _) = sample_case(&mut sampler);
        let program = arbitrary_program(seed, unstructured_graph);
        let text = to_text(&program);
        let reparsed = parse(&text).expect("round trip parses");
        assert_eq!(to_text(&reparsed), text, "case {case}");
    }
}

#[test]
fn canonical_text_is_idempotent() {
    let mut sampler = SplitMix64::new(0x9A07);
    for case in 0..CASES {
        let (seed, _, _, _) = sample_case(&mut sampler);
        let program = arbitrary_program(seed % 1_000, false);
        let result = optimize(&program);
        let once = canonical_text(&result.program);
        let reparsed = parse(&once).expect("canonical text parses");
        assert_eq!(canonical_text(&reparsed), once, "case {case}");
    }
}

#[test]
fn splitting_is_idempotent() {
    let mut sampler = SplitMix64::new(0x9A08);
    for case in 0..CASES {
        let (seed, unstructured_graph, _, _) = sample_case(&mut sampler);
        let mut program = arbitrary_program(seed % 1_000, unstructured_graph);
        program.split_critical_edges();
        let once = to_text(&program);
        assert_eq!(program.split_critical_edges(), 0, "case {case}");
        assert_eq!(to_text(&program), once, "case {case}");
    }
}

#[test]
fn division_programs_are_weakly_preserved() {
    // With division enabled, traps are part of the semantics; motion
    // may move a trap across writes but never add or remove one.
    use am_core::verify::weakly_equivalent;
    let mut sampler = SplitMix64::new(0x9A09);
    for case in 0..CASES {
        let (seed, _, _, run_seed) = sample_case(&mut sampler);
        let vals = [
            sampler.gen_range(-4i64..5),
            sampler.gen_range(-4i64..5),
            sampler.gen_range(-4i64..5),
        ];
        let mut rng = SplitMix64::new(seed % 1_000);
        let program = structured(
            &mut rng,
            &StructuredConfig {
                allow_div: true,
                ..StructuredConfig::default()
            },
        );
        let result = optimize(&program);
        assert!(result.motion.converged, "case {case}");
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&program, &cfg);
        let b = run(&result.program, &cfg);
        assert!(
            weakly_equivalent(&a, &b),
            "case {case}: weak equivalence violated:\n{a:?}\nvs\n{b:?}"
        );
        assert_eq!(
            a.trap.is_some(),
            b.trap.is_some(),
            "case {case}: trap potential changed"
        );
    }
}

#[test]
fn motion_order_is_confluent_in_costs() {
    // Lemma 3.6 (local confluence) implies both procedure orders reach
    // cost-equivalent fixed points.
    use am_core::motion::{assignment_motion_ordered, MotionOrder};
    let mut sampler = SplitMix64::new(0x9A0A);
    for case in 0..CASES {
        let (seed, _, vals, run_seed) = sample_case(&mut sampler);
        let program = arbitrary_program(seed % 800, false);
        let budget = am_core::motion::default_round_budget(&program) * 2 + 32;
        let mut rae_first = program.clone();
        rae_first.split_critical_edges();
        let s1 = assignment_motion_ordered(&mut rae_first, budget, MotionOrder::RaeFirst);
        let mut hoist_first = program.clone();
        hoist_first.split_critical_edges();
        let s2 = assignment_motion_ordered(&mut hoist_first, budget, MotionOrder::HoistFirst);
        assert!(s1.converged && s2.converged, "case {case}");
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&rae_first, &cfg);
        let b = run(&hoist_first, &cfg);
        assert_eq!(a.observable(), b.observable(), "case {case}");
        if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
            assert_eq!(
                a.expr_evals, b.expr_evals,
                "case {case}: expression costs must agree"
            );
            assert_eq!(
                a.assign_execs, b.assign_execs,
                "case {case}: assignment costs must agree"
            );
        }
    }
}

#[test]
fn flush_justifies_the_three_address_assumption() {
    // Sec. 6 / Figs. 18-20: on programs whose only non-3-address
    // structure comes from decomposing nested loop-invariant
    // expressions, the uniform algorithm matches or beats the classic
    // EM-with-copy-propagation pipeline.
    //
    // The claim is deliberately *not* universal: on programs with
    // source-level copies (x := y), copy propagation can merge
    // syntactically different patterns (x*z with y*z) — a value-level
    // transformation outside the universe G, where it may beat any
    // member of G (see EXPERIMENTS.md, "boundary of the theorem").
    use std::fmt::Write as _;
    let mut sampler = SplitMix64::new(0x9A0B);
    for case in 0..CASES {
        let exprs = sampler.gen_range(1usize..4);
        let depth = sampler.gen_range(2usize..4);
        let trip = sampler.gen_range(1i64..5);
        let mut src = String::from("start 0\nend 3\nnode 0 { skip }\nnode 1 {\n");
        for e in 0..exprs {
            let mut rhs = format!("a{e}");
            for level in 0..depth {
                let _ = write!(rhs, " + b{level} * c{e}");
            }
            let _ = writeln!(src, "  x{e} := {rhs}");
        }
        let _ = writeln!(src, "  acc := acc + x0");
        let _ = writeln!(src, "  q := q - 1");
        // Every result is observable: dead-code effects (which EM+CP's
        // cleanup performs but the paper's algorithm deliberately never
        // does) must not skew the comparison.
        let outs: Vec<String> = (0..exprs).map(|e| format!("x{e}")).collect();
        let _ = writeln!(
            src,
            "}}\nnode 2 {{ branch q > 0 }}\nnode 3 {{ out(acc,{}) }}",
            outs.join(",")
        );
        src.push_str("edge 0 -> 1\nedge 1 -> 2\nedge 2 -> 1, 3\n");
        let program = parse_with_mode(&src, Mode::Decompose).expect("family parses");

        let full = optimize(&program).program;
        let mut emcp = program.clone();
        emcp.split_critical_edges();
        for _ in 0..6 {
            let before = emcp.clone();
            lazy_expression_motion(&mut emcp);
            am_core::copyprop::copy_propagation(&mut emcp, true);
            if emcp == before {
                break;
            }
        }
        let cfg = Config {
            oracle: Oracle::Deterministic,
            inputs: vec![
                ("q".into(), trip),
                ("a0".into(), 2),
                ("b0".into(), 3),
                ("b1".into(), -1),
                ("b2".into(), 4),
                ("c0".into(), 5),
                ("c1".into(), 1),
                ("c2".into(), -2),
            ],
            ..Config::default()
        };
        let base = run(&program, &cfg);
        let r_full = run(&full, &cfg);
        let r_emcp = run(&emcp, &cfg);
        assert_eq!(base.stop, StopReason::ReachedEnd, "case {case}");
        assert_eq!(base.observable(), r_full.observable(), "case {case}");
        assert_eq!(base.observable(), r_emcp.observable(), "case {case}");
        assert!(
            r_full.expr_evals <= r_emcp.expr_evals,
            "case {case}: uniform EM & AM must match or beat EM+CP on the Fig. 18 family: {} vs {}",
            r_full.expr_evals,
            r_emcp.expr_evals
        );
        // And with no more temporary traffic.
        assert!(
            r_full.temp_assign_execs <= r_emcp.temp_assign_execs,
            "case {case}"
        );
    }
}
