//! Property-based tests for the paper's theorems over random programs.
//!
//! * Thm 5.1 (correctness): the transformed program is observationally
//!   equivalent to the original on corresponding runs.
//! * Thm 5.2 (expression optimality): no complete corresponding run of the
//!   transformed program evaluates more expressions — and the output also
//!   dominates every baseline (EM only, AM only, restricted AM).
//! * Thm 5.3/5.4 (relative optimality): the output is a fixed point of
//!   further assignment motion and flushing.

use assignment_motion::prelude::*;
use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::random::{structured, unstructured, StructuredConfig, UnstructuredConfig};
use am_ir::FlowGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_program(seed: u64, unstructured_graph: bool) -> FlowGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    if unstructured_graph {
        unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes: 10,
                extra_edges: 5,
                max_instrs: 3,
                num_vars: 5,
                allow_div: false,
            },
        )
    } else {
        structured(&mut rng, &StructuredConfig::default())
    }
}

fn run_cfg(seed: u64, inputs: &[(String, i64)]) -> Config {
    Config {
        oracle: Oracle::random(seed, 12),
        inputs: inputs.to_vec(),
        ..Config::default()
    }
}

fn inputs(values: [i64; 3]) -> Vec<(String, i64)> {
    vec![
        ("v0".into(), values[0]),
        ("v1".into(), values[1]),
        ("v2".into(), values[2]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn global_preserves_semantics_and_expression_optimality(
        seed in 0u64..2_000,
        unstructured_graph in proptest::bool::ANY,
        vals in [-8i64..8, -8i64..8, -8i64..8],
        run_seed in 0u64..1_000,
    ) {
        let program = arbitrary_program(seed, unstructured_graph);
        let result = optimize(&program);
        prop_assert!(result.motion.converged);
        prop_assert_eq!(result.program.validate(), Ok(()));
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&program, &cfg);
        let b = run(&result.program, &cfg);
        prop_assert_eq!(a.observable(), b.observable());
        if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
            prop_assert!(b.expr_evals <= a.expr_evals,
                "expression optimality violated: {} -> {}", a.expr_evals, b.expr_evals);
            // The refined per-pattern claim of Def. 3.8(1): each pattern is
            // evaluated at most as often as in the original.
            prop_assert!(
                am_core::verify::pattern_dominates(&a, &b),
                "per-pattern optimality violated: {:?} vs {:?}",
                a.expr_evals_by_pattern, b.expr_evals_by_pattern
            );
        }
    }

    #[test]
    fn global_dominates_baselines(
        seed in 0u64..800,
        vals in [-8i64..8, -8i64..8, -8i64..8],
        run_seed in 0u64..500,
    ) {
        let program = arbitrary_program(seed, false);
        let full = optimize(&program).program;

        let mut em = program.clone();
        em.split_critical_edges();
        lazy_expression_motion(&mut em);

        let mut am = program.clone();
        am.split_critical_edges();
        assignment_motion(&mut am);

        let cfg = run_cfg(run_seed, &inputs(vals));
        let r_full = run(&full, &cfg);
        for (label, g) in [("em", &em), ("am", &am)] {
            let r_base = run(g, &cfg);
            prop_assert_eq!(r_base.observable(), r_full.observable(), "{} semantics", label);
            if r_base.stop == StopReason::ReachedEnd && r_full.stop == StopReason::ReachedEnd {
                prop_assert!(
                    r_full.expr_evals <= r_base.expr_evals,
                    "{}: {} < {} (full should dominate)",
                    label, r_base.expr_evals, r_full.expr_evals
                );
            }
        }
    }

    #[test]
    fn output_is_a_fixpoint_of_further_motion(
        seed in 0u64..800,
        vals in [-8i64..8, -8i64..8, -8i64..8],
        run_seed in 0u64..500,
    ) {
        // Thm 5.3: further assignment motion cannot improve the output —
        // nothing is eliminated and no run gets cheaper. (The program text
        // may still change by reordering independent instructions within a
        // block, which is cost-neutral.)
        let program = arbitrary_program(seed, false);
        let result = optimize(&program);
        let mut again = result.program.clone();
        let stats = assignment_motion(&mut again);
        prop_assert!(stats.converged);
        prop_assert_eq!(stats.eliminated, 0, "relative assignment optimality");
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&result.program, &cfg);
        let b = run(&again, &cfg);
        prop_assert_eq!(a.observable(), b.observable());
        if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
            prop_assert_eq!(a.expr_evals, b.expr_evals);
            prop_assert_eq!(a.assign_execs, b.assign_execs);
        }
    }

    #[test]
    fn em_baseline_preserves_semantics(
        seed in 0u64..1_000,
        unstructured_graph in proptest::bool::ANY,
        vals in [-8i64..8, -8i64..8, -8i64..8],
        run_seed in 0u64..500,
    ) {
        let program = arbitrary_program(seed, unstructured_graph);
        let mut em = program.clone();
        em.split_critical_edges();
        lazy_expression_motion(&mut em);
        prop_assert_eq!(em.validate(), Ok(()));
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&program, &cfg);
        let b = run(&em, &cfg);
        prop_assert_eq!(a.observable(), b.observable());
        if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
            prop_assert!(b.expr_evals <= a.expr_evals);
        }
    }

    #[test]
    fn restricted_baseline_preserves_semantics(
        seed in 0u64..500,
        vals in [-8i64..8, -8i64..8, -8i64..8],
        run_seed in 0u64..500,
    ) {
        let program = arbitrary_program(seed, false);
        let mut restricted = program.clone();
        restricted.split_critical_edges();
        restricted_assignment_motion(&mut restricted);
        prop_assert_eq!(restricted.validate(), Ok(()));
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&program, &cfg);
        let b = run(&restricted, &cfg);
        prop_assert_eq!(a.observable(), b.observable());
    }

    #[test]
    fn parser_round_trips_generated_programs(seed in 0u64..2_000, unstructured_graph in proptest::bool::ANY) {
        let program = arbitrary_program(seed, unstructured_graph);
        let text = to_text(&program);
        let reparsed = parse(&text).expect("round trip parses");
        prop_assert_eq!(to_text(&reparsed), text);
    }

    #[test]
    fn canonical_text_is_idempotent(seed in 0u64..1_000) {
        let program = arbitrary_program(seed, false);
        let result = optimize(&program);
        let once = canonical_text(&result.program);
        let reparsed = parse(&once).expect("canonical text parses");
        prop_assert_eq!(canonical_text(&reparsed), once);
    }

    #[test]
    fn splitting_is_idempotent(seed in 0u64..1_000, unstructured_graph in proptest::bool::ANY) {
        let mut program = arbitrary_program(seed, unstructured_graph);
        program.split_critical_edges();
        let once = to_text(&program);
        prop_assert_eq!(program.split_critical_edges(), 0);
        prop_assert_eq!(to_text(&program), once);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn division_programs_are_weakly_preserved(
        seed in 0u64..1_000,
        vals in [-4i64..5, -4i64..5, -4i64..5],
        run_seed in 0u64..500,
    ) {
        // With division enabled, traps are part of the semantics; motion
        // may move a trap across writes but never add or remove one.
        use am_core::verify::weakly_equivalent;
        let mut rng = StdRng::seed_from_u64(seed);
        let program = structured(
            &mut rng,
            &StructuredConfig {
                allow_div: true,
                ..StructuredConfig::default()
            },
        );
        let result = optimize(&program);
        prop_assert!(result.motion.converged);
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&program, &cfg);
        let b = run(&result.program, &cfg);
        prop_assert!(
            weakly_equivalent(&a, &b),
            "weak equivalence violated:\n{:?}\nvs\n{:?}", a, b
        );
        prop_assert_eq!(a.trap.is_some(), b.trap.is_some(), "trap potential changed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn motion_order_is_confluent_in_costs(
        seed in 0u64..800,
        vals in [-8i64..8, -8i64..8, -8i64..8],
        run_seed in 0u64..500,
    ) {
        // Lemma 3.6 (local confluence) implies both procedure orders reach
        // cost-equivalent fixed points.
        use am_core::motion::{assignment_motion_ordered, MotionOrder};
        let program = arbitrary_program(seed, false);
        let budget = am_core::motion::default_round_budget(&program) * 2 + 32;
        let mut rae_first = program.clone();
        rae_first.split_critical_edges();
        let s1 = assignment_motion_ordered(&mut rae_first, budget, MotionOrder::RaeFirst);
        let mut hoist_first = program.clone();
        hoist_first.split_critical_edges();
        let s2 = assignment_motion_ordered(&mut hoist_first, budget, MotionOrder::HoistFirst);
        prop_assert!(s1.converged && s2.converged);
        let cfg = run_cfg(run_seed, &inputs(vals));
        let a = run(&rae_first, &cfg);
        let b = run(&hoist_first, &cfg);
        prop_assert_eq!(a.observable(), b.observable());
        if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
            prop_assert_eq!(a.expr_evals, b.expr_evals, "expression costs must agree");
            prop_assert_eq!(a.assign_execs, b.assign_execs, "assignment costs must agree");
        }
    }

    #[test]
    fn flush_justifies_the_three_address_assumption(
        exprs in 1usize..4,
        depth in 2usize..4,
        trip in 1i64..5,
    ) {
        // Sec. 6 / Figs. 18-20: on programs whose only non-3-address
        // structure comes from decomposing nested loop-invariant
        // expressions, the uniform algorithm matches or beats the classic
        // EM-with-copy-propagation pipeline.
        //
        // The claim is deliberately *not* universal: on programs with
        // source-level copies (x := y), copy propagation can merge
        // syntactically different patterns (x*z with y*z) — a value-level
        // transformation outside the universe G, where it may beat any
        // member of G (see EXPERIMENTS.md, "boundary of the theorem").
        use std::fmt::Write as _;
        let mut src = String::from("start 0\nend 3\nnode 0 { skip }\nnode 1 {\n");
        for e in 0..exprs {
            let mut rhs = format!("a{e}");
            for level in 0..depth {
                let _ = write!(rhs, " + b{level} * c{e}");
            }
            let _ = writeln!(src, "  x{e} := {rhs}");
        }
        let _ = writeln!(src, "  acc := acc + x0");
        let _ = writeln!(src, "  q := q - 1");
        // Every result is observable: dead-code effects (which EM+CP's
        // cleanup performs but the paper's algorithm deliberately never
        // does) must not skew the comparison.
        let outs: Vec<String> = (0..exprs).map(|e| format!("x{e}")).collect();
        let _ = writeln!(
            src,
            "}}\nnode 2 {{ branch q > 0 }}\nnode 3 {{ out(acc,{}) }}",
            outs.join(",")
        );
        src.push_str("edge 0 -> 1\nedge 1 -> 2\nedge 2 -> 1, 3\n");
        let program = parse_with_mode(&src, Mode::Decompose).expect("family parses");

        let full = optimize(&program).program;
        let mut emcp = program.clone();
        emcp.split_critical_edges();
        for _ in 0..6 {
            let before = emcp.clone();
            lazy_expression_motion(&mut emcp);
            am_core::copyprop::copy_propagation(&mut emcp, true);
            if emcp == before {
                break;
            }
        }
        let cfg = Config {
            oracle: Oracle::Deterministic,
            inputs: vec![
                ("q".into(), trip),
                ("a0".into(), 2),
                ("b0".into(), 3),
                ("b1".into(), -1),
                ("b2".into(), 4),
                ("c0".into(), 5),
                ("c1".into(), 1),
                ("c2".into(), -2),
            ],
            ..Config::default()
        };
        let base = run(&program, &cfg);
        let r_full = run(&full, &cfg);
        let r_emcp = run(&emcp, &cfg);
        prop_assert_eq!(base.stop, StopReason::ReachedEnd);
        prop_assert_eq!(base.observable(), r_full.observable());
        prop_assert_eq!(base.observable(), r_emcp.observable());
        prop_assert!(
            r_full.expr_evals <= r_emcp.expr_evals,
            "uniform EM & AM must match or beat EM+CP on the Fig. 18 family: {} vs {}",
            r_full.expr_evals,
            r_emcp.expr_evals
        );
        // And with no more temporary traffic.
        prop_assert!(r_full.temp_assign_execs <= r_emcp.temp_assign_execs);
    }
}
