//! Integration tests pinning the load-bearing facts of every reproduced
//! figure (see `am-bench::figures` and EXPERIMENTS.md).

use am_bench::figures::{self, FigureReport};

fn measurement<'r>(report: &'r FigureReport, label: &str) -> &'r figures::Measurement {
    report
        .measurements
        .iter()
        .find(|m| m.label == label)
        .unwrap_or_else(|| panic!("missing measurement '{label}' in {}", report.id))
}

#[test]
fn fig01_em_shares_the_expression() {
    let r = figures::fig01_expression_motion();
    let (_, after) = &r.after[0];
    assert_eq!(after.matches("a+b").count(), 1, "{after}");
    let orig = measurement(&r, "original");
    let em = measurement(&r, "EM");
    assert!(em.expr_evals < orig.expr_evals);
    // EM cannot reduce assignment executions; it adds temporaries.
    assert!(em.assign_execs >= orig.assign_execs);
    assert!(em.temp_assigns > 0);
}

#[test]
fn fig02_am_eliminates_whole_assignments() {
    let r = figures::fig02_assignment_motion();
    let (_, after) = &r.after[0];
    assert_eq!(after.matches("x := a+b").count(), 1, "{after}");
    let orig = measurement(&r, "original");
    let am = measurement(&r, "AM");
    assert!(am.expr_evals < orig.expr_evals);
    assert!(
        am.assign_execs < orig.assign_execs,
        "AM removes assignments"
    );
    assert_eq!(am.temp_assigns, 0, "AM alone introduces no temporaries");
}

#[test]
fn fig03_initialized_am_subsumes_em() {
    let r = figures::fig03_uniform();
    let em = figures::fig01_expression_motion();
    // Same evaluation counts as EM on the same program and oracles.
    assert_eq!(
        measurement(&r, "init+AM").expr_evals,
        measurement(&em, "EM").expr_evals
    );
}

#[test]
fn fig05_global_matches_paper_output() {
    let r = figures::fig05_global();
    let (_, final_text) = r.after.last().unwrap();
    assert!(
        final_text.contains("node 1 {\n  h1 := c+d\n  y := h1\n  h2 := x+z\n  x := y+z\n}"),
        "{final_text}"
    );
    assert!(
        final_text.contains("node 2 {\n  branch h2 > y+i\n}"),
        "{final_text}"
    );
    assert!(
        final_text.contains("node 3 {\n  i := i+x\n  h2 := x+z\n}"),
        "{final_text}"
    );
    assert!(
        final_text.contains("node 4 {\n  x := h1\n  out(i,x,y)\n}"),
        "{final_text}"
    );
    let orig = measurement(&r, "original");
    let opt = measurement(&r, "GlobAlg");
    assert!(opt.expr_evals < orig.expr_evals);
}

#[test]
fn fig06_uniform_beats_both_separate_effects() {
    let r = figures::fig06_separate_effects();
    let em = measurement(&r, "EM only").expr_evals;
    let am = measurement(&r, "AM only").expr_evals;
    let both = measurement(&r, "uniform EM & AM").expr_evals;
    let orig = measurement(&r, "original").expr_evals;
    assert!(em < orig);
    assert!(am < orig);
    assert!(both < em, "uniform beats EM alone");
    assert!(both < am, "uniform beats AM alone");
    // Neither separate effect removes the loop-invariant assignment.
    let (_, em_text) = &r.after[0];
    let (_, am_text) = &r.after[1];
    assert!(em_text.contains("node 3 {\n  y :="), "{em_text}");
    assert!(am_text.contains("x+z"), "{am_text}");
}

#[test]
fn fig07_motion_across_irreducible_loop() {
    let r = figures::fig07_loops();
    let (_, after) = &r.after[0];
    // Merged at node 6…
    assert!(after.contains("node 6 {\n  x := y+z"), "{after}");
    // …nodes 7, 9, 11 emptied…
    for node in ["node 7 {\n}", "node 9 {\n}", "node 11 {\n}"] {
        assert!(after.contains(node), "{after}");
    }
    // …and the first loop's blocked occurrence untouched.
    assert!(
        after.contains("node 3 {\n  y := w\n  x := y+z\n}"),
        "{after}"
    );
    assert!(measurement(&r, "AM").expr_evals < measurement(&r, "original").expr_evals);
}

#[test]
fn fig08_restricted_vs_unrestricted() {
    let r = figures::fig08_restricted();
    let (label, restricted_text) = &r.after[0];
    assert!(label.contains("unchanged"));
    assert!(
        restricted_text.contains("x := y+z\n  out(a,x)"),
        "{restricted_text}"
    );
    let (_, unrestricted_text) = &r.after[1];
    assert!(
        !unrestricted_text.contains("x := y+z\n  out(a,x)"),
        "{unrestricted_text}"
    );
    assert_eq!(
        measurement(&r, "restricted").expr_evals,
        measurement(&r, "original").expr_evals,
        "restricted motion achieves nothing on Fig. 8"
    );
    assert!(measurement(&r, "unrestricted").expr_evals < measurement(&r, "original").expr_evals);
}

#[test]
fn fig10_splitting_unblocks_elimination() {
    let r = figures::fig10_critical_edges();
    assert!(r.after[0].0.contains("2 edge(s) split") || r.after[0].0.contains("1 edge(s) split"));
    assert!(
        measurement(&r, "AM after splitting").expr_evals < measurement(&r, "original").expr_evals
    );
}

#[test]
fn fig13_candidate_identification() {
    let r = figures::fig13_candidates();
    // Fig. 13: the first y := a+b is a candidate, the second is not.
    assert!(
        r.notes
            .iter()
            .any(|n| n.contains("'y := a+b' at instruction 1")),
        "{:?}",
        r.notes
    );
    assert!(
        !r.notes
            .iter()
            .any(|n| n.contains("'y := a+b' at instruction 4")),
        "{:?}",
        r.notes
    );
}

#[test]
fn fig16_relative_optimality_is_a_fixpoint() {
    let r = figures::fig16_incomparable();
    assert!(
        r.notes
            .iter()
            .any(|n| n.contains("identity (relative optimality): true")),
        "{:?}",
        r.notes
    );
}

#[test]
fn fig18_three_address_comparison() {
    let r = figures::fig18_three_address();
    let orig = measurement(&r, "original (3-address)").expr_evals;
    let em = measurement(&r, "EM only").expr_evals;
    let emcp = measurement(&r, "EM + CP").expr_evals;
    let full = measurement(&r, "uniform EM & AM").expr_evals;
    // EM alone helps but is stuck on t+c; EM+CP recovers; the uniform
    // algorithm matches EM+CP's evaluations with zero temporaries.
    assert!(em < orig);
    assert!(emcp < em);
    assert!(full <= emcp);
    assert_eq!(measurement(&r, "uniform EM & AM").temp_assigns, 0);
    assert!(measurement(&r, "EM + CP").temp_assigns > 0);
    // Fig. 20(b): the loop body is empty; both assignments sit before it.
    let (_, full_text) = r.after.last().unwrap();
    assert!(full_text.contains("t1 := a+b\n  x := t1+c"), "{full_text}");
}

#[test]
fn all_reports_generate() {
    let reports = figures::all_reports();
    assert_eq!(reports.len(), 11);
    for r in &reports {
        assert!(!r.before.is_empty(), "{} missing input", r.id);
    }
}
