//! # assignment-motion
//!
//! A complete implementation of *The Power of Assignment Motion* (Jens
//! Knoop, Oliver Rüthing, Bernhard Steffen — PLDI 1995): uniform
//! elimination of partially redundant expressions **and** assignments,
//! capturing all second-order effects between expression motion (EM) and
//! assignment motion (AM).
//!
//! This crate is a facade over the workspace:
//!
//! * [`ir`] ([`am_ir`]) — the flow-graph program representation, textual
//!   frontend, counting interpreter and program generators;
//! * [`dfa`] ([`am_dfa`]) — the generic bit-vector data-flow framework;
//! * [`bitset`] ([`am_bitset`]) — dense bit sets;
//! * [`alg`] ([`am_core`]) — the paper's three-phase algorithm
//!   ([`alg::global::optimize`]) and every baseline it is compared against
//!   (lazy code motion, restricted assignment motion, copy propagation,
//!   assignment sinking);
//! * [`pipeline`] ([`am_pipeline`]) — parallel batch optimization over
//!   whole corpora with a content-addressed result cache (ships the
//!   `amopt` binary);
//! * [`check`] ([`am_check`]) — differential translation validation with
//!   fault injection and shrinking (ships the `amcheck` binary);
//! * [`lint`] ([`am_lint`]) — the static-analysis suite over programs and
//!   optimizer output (ships the `amlint` binary);
//! * [`prove`] ([`am_prove`]) — the symbolic equivalence prover: statically
//!   validates every phase transition of the optimizer on all inputs, with
//!   interpreter-confirmed counterexamples on refutation (see
//!   `docs/VERIFICATION.md`);
//! * [`serve`] ([`am_serve`]) — the long-running optimization service:
//!   length-prefixed JSON protocol, persistent content-addressed cache,
//!   per-client fairness and live metrics (ships the `amserve` daemon and
//!   `amclient` CLI).
//!
//! # Quickstart
//!
//! ```
//! use assignment_motion::prelude::*;
//!
//! // The paper's running example (Fig. 4).
//! let program = parse(
//!     "start 1\nend 4\n\
//!      node 1 { y := c+d }\n\
//!      node 2 { branch x+z > y+i }\n\
//!      node 3 { y := c+d; x := y+z; i := i+x }\n\
//!      node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
//!      edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
//! )?;
//! let optimized = optimize(&program);
//!
//! // Fig. 5: loop-invariant assignment hoisted, redundant assignment gone.
//! let text = canonical_text(&optimized.program);
//! assert!(text.contains("node 3 {\n  i := i+x\n  h2 := x+z\n}"));
//!
//! // And it provably pays: fewer expression evaluations on every run.
//! let report = compare(&program, &optimized.program, &Default::default());
//! assert!(report.semantically_equal());
//! assert!(report.expression_dominates());
//! # Ok::<(), assignment_motion::ir::text::ParseError>(())
//! ```

pub use am_bitset as bitset;
pub use am_check as check;
pub use am_core as alg;
pub use am_dfa as dfa;
pub use am_ir as ir;
pub use am_lang as lang;
pub use am_lint as lint;
pub use am_pipeline as pipeline;
pub use am_prove as prove;
pub use am_serve as serve;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use am_core::global::{optimize, optimize_with, GlobalConfig, GlobalResult};
    pub use am_core::lcm::{busy_expression_motion, lazy_expression_motion};
    pub use am_core::motion::assignment_motion;
    pub use am_core::restricted::restricted_assignment_motion;
    pub use am_core::sink::{sink_assignments, SinkConfig};
    pub use am_core::verify::{compare, CompareConfig};
    pub use am_ir::alpha::{alpha_eq, canonical_text};
    pub use am_ir::interp::{run, Config as RunConfig, Oracle};
    pub use am_ir::text::{parse, parse_with_mode, to_text, Mode};
    pub use am_ir::FlowGraph;
    pub use am_lang::compile as compile_while;
    pub use am_lang::{compile_source, SourceKind};
    pub use am_lint::{lint_graph, LintConfig, LintReport, Severity};
    pub use am_pipeline::{Job, Pipeline, PipelineConfig, PipelineReport};
    pub use am_prove::{
        discharge_provenance, prove_optimization, prove_pair, ChainOutcome, DischargeReport,
        PairOutcome, ProveConfig, ProveStats, Verdict,
    };
}
